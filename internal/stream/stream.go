// Package stream is Hurricane's continuous-ingestion subsystem: it turns
// unbounded record sources into event-time tumbling windows and executes
// every window as a complete DAG job on the multi-job scheduler.
//
// The paper leaves "a more sophisticated dataflow execution model for
// streaming workloads" as future work (§3.1). The engine's Pipelined tasks
// cover the simple half — a consumer chasing a producer's bag — but they
// cannot use partitioned shuffle edges at all (see the documented
// limitation in core's graph validation): a partitioned consumer's worker
// set is frozen from the partition map at schedule time, which is exactly
// what mid-stream refinement must keep changing. The windowed model takes
// the opposite route, in the spirit of micro-batch streaming systems:
//
//   - ingesters append source records into per-window live bags as they
//     arrive, routing by event time;
//   - a low-watermark over all sources (with an idle-source timeout, so a
//     stalled source cannot wedge the stream) seals a window's source bags
//     once it passes the window end;
//   - each sealed window is submitted through Cluster.SubmitJob as an
//     ordinary namespaced job, so every window gets partitioned shuffle
//     edges, sketch-driven splitting, cloning, fair-share leasing, and
//     failure recovery for free, and in-flight windows are bounded by
//     scheduler admission plus a stream-level in-flight cap;
//   - records arriving after their window sealed go to a late-record side
//     channel: folded into the next open window (default) or surfaced in a
//     per-window late bag the application reads itself;
//   - cross-window skew memory: when a window finishes, its masters' final
//     partition maps and merged edge sketches (core.EdgeMemory) warm-start
//     the next window's partitioner via shuffle.WarmStart — known-hot keys
//     are pre-split and pre-isolated instead of rediscovered from scratch
//     inside every window.
//
// A failed window job is retried in place: core.JobHandle.Reset rewinds
// the window's sealed source bags and wipes every derived bag, so the
// retry reprocesses exactly the sealed input (exactly-once per window)
// without blocking successor windows.
package stream

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/obs"
)

// Record is one source record: an event-time stamp (unix nanoseconds) and
// its encoded payload, appended verbatim — as one framed record — into the
// window's source bag. Encode payloads with the same codec the window
// application's tasks decode with.
type Record struct {
	Time int64
	Data []byte
}

// Source delivers an unbounded record stream into one source bag of the
// window application. The ingestion pump polls it from a single goroutine.
type Source interface {
	// Poll returns the records currently available, or an empty batch when
	// none are (the pump retries after its poll interval). Returning
	// io.EOF ends the source permanently; any other error aborts the
	// stream. Poll must respect ctx.
	Poll(ctx context.Context) ([]Record, error)
}

// Spec describes a continuous-ingestion stream.
type Spec struct {
	// Name identifies the stream; window jobs are named "<Name>.w<i>" and
	// own the matching bag namespaces. It must not contain '/'.
	Name string
	// App is the window application template: the DAG executed once per
	// window. Its source bags are fed by Sources; all other bags behave
	// exactly as in a batch job (including partitioned shuffle edges).
	App *core.App
	// Sources maps each source bag of App to the Source that feeds it.
	// Every source bag must have an entry — an unfed source bag would
	// never seal and the window job would never finish.
	Sources map[string]Source
	// Window is the tumbling window width in event time.
	Window time.Duration
	// Origin anchors window 0's start in event time. Zero aligns window 0
	// to the first record observed.
	Origin int64
	// IdleTimeout excludes a source from the low-watermark after it has
	// delivered nothing for this long, so one stalled source cannot wedge
	// every window behind it (default 500ms). An excluded source rejoins
	// the watermark as soon as it delivers again.
	IdleTimeout time.Duration
	// PollInterval is the pump's idle sleep between source sweeps
	// (default 2ms).
	PollInterval time.Duration
	// MaxWindows seals at most this many windows and then drains; 0 means
	// run until every source returns io.EOF or Drain is called.
	MaxWindows int
	// MaxInFlight bounds windows submitted but not yet completed
	// (default 4); the scheduler's own admission control applies on top.
	MaxInFlight int
	// MaxRetries is how many times a failed window job is reset and
	// resubmitted before the window is reported failed. 0 selects the
	// default of 1; pass a negative value to disable retries entirely
	// (fail-fast, e.g. when window tasks have non-idempotent external
	// side effects a re-execution would duplicate).
	MaxRetries int
	// SurfaceLate diverts late records into a per-window late bag
	// (WindowResult.LateBag) instead of folding them into the next open
	// window. A window's late bag accepts records until the following
	// window seals; later stragglers are counted as dropped.
	SurfaceLate bool
	// ColdStart disables cross-window skew memory: every window starts
	// from the plain base partition map (the baseline the streaming
	// benchmark measures warm-start against).
	ColdStart bool
	// Master overrides the cluster's MasterConfig for window jobs; its
	// SplitFan and IsolateFraction also parameterize warm-start seeding.
	Master *core.MasterConfig
	// Weight is the fair-share weight of each window job.
	Weight int
}

func (s *Spec) fill() {
	if s.IdleTimeout <= 0 {
		s.IdleTimeout = 500 * time.Millisecond
	}
	if s.PollInterval <= 0 {
		s.PollInterval = 2 * time.Millisecond
	}
	if s.MaxInFlight <= 0 {
		s.MaxInFlight = 4
	}
	if s.MaxRetries < 0 {
		s.MaxRetries = 0
	} else if s.MaxRetries == 0 {
		s.MaxRetries = 1
	}
}

// WindowResult is the outcome of one window. Results are delivered by
// Handle.Next in window order once the window's job (including retries)
// has completed.
type WindowResult struct {
	// Index is the window's position in the stream (0-based).
	Index int
	// Start and End bound the window in event time: [Start, End).
	Start, End int64
	// Records is the number of records sealed into the window's source
	// bags, including late records folded forward from earlier windows.
	Records int64
	// Attempts is how many times the window's job was submitted (1 = no
	// retry).
	Attempts int
	// Err is the terminal error after all retries, nil on success.
	Err error
	// SealedAt, SubmittedAt, and DoneAt are wall-clock timestamps:
	// watermark seal, first job submission, and job completion.
	// DoneAt−SubmittedAt is the window's execution latency;
	// SubmittedAt−SealedAt is time spent queued behind the in-flight cap.
	SealedAt, SubmittedAt, DoneAt time.Time
	// Seeded reports whether cross-window skew memory warm-started this
	// window's shuffle edges; Splits and Isolations count the refinements
	// the window's own master still performed at runtime.
	Seeded             bool
	Splits, Isolations int

	late    atomic.Int64
	lateBag string
	job     *core.JobHandle
	h       *Handle
}

// Bag maps a declared bag name of the window application to the physical
// (window-namespaced) bag name: read the window's outputs from it. An
// empty window's bags do not exist (no job ran); Collect on them returns
// nothing.
func (r *WindowResult) Bag(name string) string {
	return windowJobName(r.h.spec.Name, r.Index) + "/" + name
}

// Job returns the window's job handle. It is nil when submission itself
// failed — and for a window that sealed empty, which completes
// immediately without running a job (an event-time gap may cover
// thousands of empty windows; see seal).
func (r *WindowResult) Job() *core.JobHandle { return r.job }

// Profile returns the window job's execution profile (nil for empty or
// unsubmitted windows). Warm-started windows show their gains here: the
// first consumer task's queue+read wait shrinks when the seeded
// partition map spares the edge a mid-run re-shuffle.
func (r *WindowResult) Profile() *obs.Profile {
	if r.job == nil {
		return nil
	}
	return r.job.Profile()
}

// LateBag names the bag holding records that arrived after this window
// sealed ("" unless Spec.SurfaceLate, or when no late record arrived).
// The bag is sealed when the next window seals; its records never reach
// the window's job.
func (r *WindowResult) LateBag() string {
	r.h.mu.Lock()
	defer r.h.mu.Unlock()
	return r.lateBag
}

// LateCount reports how many late records were attributed to this window
// so far (final once the following window has sealed).
func (r *WindowResult) LateCount() int64 { return r.late.Load() }

// Discard garbage collects the window's bags (outputs included) and its
// late bag, and releases the window job's name claims.
func (r *WindowResult) Discard(ctx context.Context) error {
	if r.job != nil {
		if err := r.job.Discard(ctx); err != nil {
			return err
		}
	}
	if lb := r.LateBag(); lb != "" {
		return r.h.store.Delete(ctx, lb)
	}
	return nil
}

// Stats is a point-in-time snapshot of the stream's progress.
type Stats struct {
	// Watermark is the stream's current event-time low watermark; Lag is
	// wall-clock now minus the watermark (meaningful when event times
	// track wall-clock time).
	Watermark int64
	Lag       time.Duration
	// Ingested counts records appended to window bags; Late counts
	// records that arrived after their window sealed; Dropped counts
	// records discarded entirely (past the late grace period or beyond
	// MaxWindows).
	Ingested, Late, Dropped int64
	// Open / Sealed / InFlight / Completed / Failed count windows.
	Open, Sealed, InFlight, Completed, Failed int
	// MemoryWindow is the index of the window the current skew memory was
	// captured from (-1 before any window completed).
	MemoryWindow int
}

// Handle is the caller's grip on a running stream.
type Handle struct {
	spec  Spec
	c     *core.Cluster
	store *bag.Store

	ctx    context.Context
	cancel context.CancelFunc

	submitQ chan *window
	sem     chan struct{} // in-flight window slots
	// submitLock serializes SubmitJob calls: every window job is built
	// from the same App template, and submission re-validates (and
	// re-derives the wiring of) that shared graph.
	submitLock sync.Mutex

	wg       sync.WaitGroup // submitter + watchers
	pumpDone chan struct{}

	// pump-owned state (single goroutine, no lock needed). The counters
	// are mirrored into the mu-guarded Stats fields once per sweep
	// (advance/drainSeal), so the per-record ingestion hot path takes no
	// locks; Stats may lag by at most one poll interval.
	lastSealed                 *window // most recently sealed window (late-record grace target)
	pIngested, pLate, pDropped int64

	mu          sync.Mutex
	cond        *sync.Cond
	origin      int64
	originSet   bool
	watermark   int64
	ingested    int64
	lateTotal   int64
	dropped     int64
	open        map[int]*window
	nextSeal    int
	sealedCount int
	sealedRes   map[int]*WindowResult // every sealed window's result (late attribution)
	results     map[int]*WindowResult
	nextDeliver int
	completed   int
	failedCount int
	memory      map[string]core.EdgeMemory
	memoryWin   int
	draining    bool
	finished    bool
	pumpErr     error

	// cached observability handles, labeled stream=<name> (nil-safe
	// no-ops on an unobserved cluster)
	obsv      *obs.Observer
	mIngested *obs.Gauge
	mLate     *obs.Gauge
	mDropped  *obs.Gauge
	mOpen     *obs.Gauge
	mSealed   *obs.Counter
	mRetried  *obs.Counter
	mWarm     *obs.Counter
	mLag      *obs.Histogram
}

// windowJobName names window idx's job (and bag namespace).
func windowJobName(stream string, idx int) string {
	return fmt.Sprintf("%s.w%d", stream, idx)
}

// lateBagName names window idx's surfaced late bag. '!' keeps it in the
// control-bag namespace, outside any job's claims.
func lateBagName(stream string, idx int) string {
	return fmt.Sprintf("%s!late.%d", stream, idx)
}

// Run starts a stream on the cluster and returns its handle. The stream
// runs until every source is exhausted, MaxWindows windows have sealed,
// Drain is called, or ctx is cancelled (which aborts in-flight window
// jobs). Cluster.Shutdown while the stream runs does not deadlock it:
// the pump and window watchers observe the pool teardown and fail the
// remaining windows, leaving already-sealed records in storage.
func Run(ctx context.Context, c *core.Cluster, spec Spec) (*Handle, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("stream: empty stream name")
	}
	for _, r := range spec.Name {
		if r == '/' {
			return nil, fmt.Errorf("stream: name %q must not contain '/'", spec.Name)
		}
	}
	if spec.App == nil {
		return nil, fmt.Errorf("stream: no window application")
	}
	if spec.Window <= 0 {
		return nil, fmt.Errorf("stream: window width must be positive")
	}
	if err := spec.App.Validate(); err != nil {
		return nil, err
	}
	srcBags := make(map[string]bool)
	for _, b := range spec.App.Bags() {
		if spec.App.BagSpecFor(b).Source {
			srcBags[b] = true
		}
	}
	if len(spec.Sources) == 0 {
		return nil, fmt.Errorf("stream: no sources")
	}
	for name := range spec.Sources {
		if !srcBags[name] {
			return nil, fmt.Errorf("stream: source %q is not a source bag of the window application", name)
		}
	}
	for name := range srcBags {
		if spec.Sources[name] == nil {
			return nil, fmt.Errorf("stream: source bag %q has no Source; its windows would never seal", name)
		}
	}
	spec.fill()

	sctx, cancel := context.WithCancel(ctx)
	h := &Handle{
		spec:      spec,
		c:         c,
		store:     c.Store(),
		ctx:       sctx,
		cancel:    cancel,
		submitQ:   make(chan *window, 1024),
		sem:       make(chan struct{}, spec.MaxInFlight),
		pumpDone:  make(chan struct{}),
		open:      make(map[int]*window),
		sealedRes: make(map[int]*WindowResult),
		results:   make(map[int]*WindowResult),
		memory:    make(map[string]core.EdgeMemory),
		memoryWin: -1,
	}
	h.cond = sync.NewCond(&h.mu)
	o := c.Observer()
	sl := []string{"stream", spec.Name}
	h.obsv = o
	h.mIngested = o.Gauge("hurricane_stream_ingested_records", sl...)
	h.mLate = o.Gauge("hurricane_stream_late_records", sl...)
	h.mDropped = o.Gauge("hurricane_stream_dropped_records", sl...)
	h.mOpen = o.Gauge("hurricane_stream_open_windows", sl...)
	h.mSealed = o.Counter("hurricane_stream_windows_sealed_total", sl...)
	h.mRetried = o.Counter("hurricane_stream_window_retries_total", sl...)
	h.mWarm = o.Counter("hurricane_stream_warm_starts_total", sl...)
	h.mLag = o.Histogram("hurricane_stream_watermark_lag_us", sl...)
	// Cluster shutdown must unblock source polls and storage waits too.
	go func() {
		select {
		case <-c.PoolDone():
			cancel()
		case <-sctx.Done():
		}
	}()

	srcs := make([]*srcState, 0, len(spec.Sources))
	for _, name := range spec.App.Bags() {
		if src := spec.Sources[name]; src != nil {
			srcs = append(srcs, &srcState{bag: name, src: src, lastActive: time.Now()})
		}
	}
	h.wg.Add(1)
	go h.submitter()
	go h.pump(srcs)
	go func() {
		<-h.pumpDone
		h.wg.Wait()
		h.mu.Lock()
		h.finished = true
		h.cond.Broadcast()
		h.mu.Unlock()
		cancel() // every window job is finished; release the stream context
	}()
	return h, nil
}

// Next blocks until the next window (in index order) has completed and
// returns its result; failed windows are returned with Err set. Once the
// stream has drained and every result was delivered it returns io.EOF —
// or the stream's own error if ingestion itself failed.
func (h *Handle) Next(ctx context.Context) (*WindowResult, error) {
	stop := context.AfterFunc(ctx, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if r := h.results[h.nextDeliver]; r != nil {
			// Delivered results are never re-read; drop the reference so a
			// long-running stream does not pin every window's result (and
			// through res.job, its master state) forever.
			delete(h.results, h.nextDeliver)
			h.nextDeliver++
			return r, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if h.finished {
			if h.pumpErr != nil {
				return nil, h.pumpErr
			}
			return nil, io.EOF
		}
		h.cond.Wait()
	}
}

// Stats snapshots the stream's watermark, lag, and window counters.
func (h *Handle) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Stats{
		Watermark:    h.watermark,
		Ingested:     h.ingested,
		Late:         h.lateTotal,
		Dropped:      h.dropped,
		Open:         len(h.open),
		Sealed:       h.sealedCount,
		InFlight:     len(h.sem),
		Completed:    h.completed,
		Failed:       h.failedCount,
		MemoryWindow: h.memoryWin,
	}
	if h.originSet && h.watermark > 0 {
		st.Lag = time.Duration(time.Now().UnixNano() - h.watermark)
	}
	return st
}

// Drain gracefully ends the stream: ingestion stops, the current partial
// window (and every other still-open window) is sealed and submitted, and
// Drain returns once all in-flight window jobs have completed — only then
// is it safe to tear the cluster down with Shutdown. Results remain
// readable through Next afterwards. Drain returns the stream's ingestion
// error, if any; per-window failures are reported on their WindowResults.
func (h *Handle) Drain(ctx context.Context) error {
	h.mu.Lock()
	h.draining = true
	h.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for !h.finished {
		if err := ctx.Err(); err != nil {
			return err
		}
		h.cond.Wait()
	}
	return h.pumpErr
}
