package core

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bag"
	"repro/internal/ctrl"
	"repro/internal/obs"
	"repro/internal/shuffle"
	"repro/internal/sketch"
)

// ClusterControl is the interface through which the master exerts
// control-plane authority over compute nodes: killing a failed task's
// clones and checking for idle capacity before cloning.
type ClusterControl interface {
	// KillTask terminates all running workers of (spec, epoch) on every
	// live compute node.
	KillTask(spec string, epoch int)
	// FreeSlots reports the number of idle worker slots cluster-wide.
	FreeSlots() int
	// TotalSlots reports the total number of worker slots cluster-wide.
	TotalSlots() int
	// YieldWorker asks the named compute node to preempt the worker
	// identified by blueprint ID at its next chunk boundary (fair-share
	// clone preemption). It reports whether the worker was found.
	YieldWorker(node, bpID string) bool
}

// LeaseInfo is optionally implemented by a ClusterControl in a multi-job
// cluster: LeaseSlots reports the job's current fair-share mitigation
// budget, which the master forwards into telemetry snapshots so
// ctrl.Arbitrate caps cloning at the lease.
type LeaseInfo interface {
	LeaseSlots() int
}

// MasterConfig tunes the application master.
type MasterConfig struct {
	// Job identifies the owning job in a multi-job cluster; it tags
	// telemetry snapshots (ctrl.Snapshot.Job) and scheduler accounting.
	// Empty defaults to the application name.
	Job string

	// PollInterval is a compatibility knob from the polling era: the
	// control loop is event-driven (it blocks on telemetry signals), and a
	// non-zero PollInterval merely pins the loop's idle fallback timer to
	// this period. Zero selects an adaptive coarse fallback.
	PollInterval time.Duration
	// CloneInterval is the minimum gap between successive clones of one
	// task. The paper sends clone messages at least 2 seconds apart.
	CloneInterval time.Duration
	// FailTimeout is the heartbeat silence after which a compute node is
	// declared dead. Zero disables failure detection.
	FailTimeout time.Duration
	// StorageBandwidth (bytes/s) estimates the I/O rate used for the
	// T_IO term of the cloning heuristic (Eq. 2).
	StorageBandwidth float64
	// DisableCloning turns cloning off entirely (HurricaneNC, Fig. 6).
	DisableCloning bool
	// SampleSlots limits input-bag sampling to k random slots (0 = all).
	SampleSlots int
	// DisableHeuristic makes the master accept every rate-limited clone
	// request without evaluating Eq. 2 (used in ablations and tests).
	DisableHeuristic bool
	// SpeculativeCloning enables the paper's stated future work (§3.5):
	// the master proactively clones any task still running
	// SpeculativeAfter past its start, without waiting for an overload
	// signal. This mitigates stragglers whose slowness is not CPU-bound
	// (e.g. a degraded machine) — the clone steals the remaining chunks
	// through ordinary late binding, so unlike speculative *execution*
	// no work is redone.
	SpeculativeCloning bool
	// SpeculativeAfter is the straggler threshold for SpeculativeCloning
	// (default 4 × CloneInterval).
	SpeculativeAfter time.Duration

	// ---- skew-aware shuffle (internal/shuffle) ----

	// DisableSplitting turns off hot-partition splitting for partitioned
	// bags (static hash partitioning; the Reshape-style baseline).
	DisableSplitting bool
	// SplitInterval is the minimum gap between successive merged-sketch
	// fetches of one shuffle edge (default CloneInterval).
	SplitInterval time.Duration
	// SplitImbalance triggers a split when the hottest physical partition
	// holds more than SplitImbalance × the mean partition load
	// (default 2).
	SplitImbalance float64
	// SplitMinRecords is the number of records an edge must have observed
	// before the master considers splitting it (default 16384).
	SplitMinRecords int
	// SplitFan is how many sub-partitions a hot partition is re-hashed
	// into, and the spread factor for isolated heavy-hitter keys on
	// Spread edges (default 2).
	SplitFan int
	// IsolateFraction: when a single key accounts for at least this
	// fraction of a hot partition's records, the key is isolated into a
	// dedicated bag instead of re-hashing the partition (default 0.5).
	IsolateFraction float64

	// Policies selects the mitigation strategies the control plane runs
	// for this job. Nil installs the default set derived from the flags
	// above (DefaultPolicies); an explicit empty slice disables all
	// mitigation. Custom policies implement ctrl.Policy; policies that
	// read shuffle-edge sketches should also implement
	// ctrl.EdgeStatsConsumer so the telemetry hub fetches them.
	Policies []ctrl.Policy

	// Seeds are warm-start partition maps for the job's partitioned
	// edges, keyed by this master's (namespaced) bag names. The
	// scheduler fills it from JobConfig.Seeds; the master publishes the
	// maps from its own goroutine before its first scheduling pass, so
	// producers can never observe an unseeded edge. Best-effort: a
	// failed publish costs a cold start, not the job.
	Seeds map[string]*shuffle.PartitionMap

	// Obs receives the master's metrics (labeled by job) and decision
	// trace events. The cluster injects its shared observer here; nil
	// disables instrumentation (every update site degrades to a nil
	// check).
	Obs *obs.Observer

	// TraceID is the submitter-minted causal trace ID (JobConfig.TraceID).
	// The master registers it with the trace ring at start so every event
	// of this job — and its execution profile — carries the ID.
	TraceID string
}

func (c *MasterConfig) fill() {
	if c.CloneInterval <= 0 {
		c.CloneInterval = 2 * time.Second // paper default
	}
	if c.StorageBandwidth <= 0 {
		c.StorageBandwidth = 1 << 30 // 1 GB/s
	}
	if c.SpeculativeAfter <= 0 {
		c.SpeculativeAfter = 4 * c.CloneInterval
	}
	if c.SplitInterval <= 0 {
		c.SplitInterval = c.CloneInterval
	}
	if c.SplitImbalance <= 0 {
		c.SplitImbalance = 2
	}
	if c.SplitMinRecords <= 0 {
		c.SplitMinRecords = 16384
	}
	if c.SplitFan <= 1 {
		c.SplitFan = 2
	}
	if c.IsolateFraction <= 0 {
		c.IsolateFraction = 0.5
	}
}

// ctrlConfig projects the master tuning knobs onto the control plane's
// policy configuration.
func (c *MasterConfig) ctrlConfig() ctrl.Config {
	return ctrl.Config{
		CloneInterval:    c.CloneInterval,
		StorageBandwidth: c.StorageBandwidth,
		DisableHeuristic: c.DisableHeuristic,
		SpeculativeAfter: c.SpeculativeAfter,
		SplitImbalance:   c.SplitImbalance,
		SplitMinRecords:  c.SplitMinRecords,
		SplitFan:         c.SplitFan,
		IsolateFraction:  c.IsolateFraction,
	}
}

// DefaultPolicies builds the mitigation set the flags in cfg describe:
// reactive cloning (unless DisableCloning), speculative cloning (if
// SpeculativeCloning), and hot-partition splitting plus heavy-key
// isolation (unless DisableSplitting). Callers composing custom policy
// chains can start from this set.
func DefaultPolicies(cfg MasterConfig) []ctrl.Policy {
	cfg.fill()
	c := cfg.ctrlConfig()
	var ps []ctrl.Policy
	if !cfg.DisableCloning {
		ps = append(ps, &ctrl.ClonePolicy{Cfg: c})
		if cfg.SpeculativeCloning {
			ps = append(ps, &ctrl.SpeculativePolicy{Cfg: c})
		}
	}
	if !cfg.DisableSplitting {
		ps = append(ps, &ctrl.SplitPartitionPolicy{Cfg: c}, &ctrl.IsolateKeyPolicy{Cfg: c})
	}
	return ps
}

// taskState is the master's view of one task of the execution graph.
type taskState struct {
	spec *TaskSpec

	epoch       int
	scheduled   bool
	workers     int          // worker indices handed out at this epoch
	doneWorkers map[int]bool // worker indices completed at this epoch
	mergeSched  bool
	mergeDone   bool
	renamed     bool
	finished    bool

	startedAt time.Time
	lastClone time.Time

	// running maps blueprint ID -> node, for failure recovery.
	running map[string]string

	// yieldable records, per worker index of the current epoch, whether
	// the worker is a safe fair-share preemption target: a clone that
	// consumes the task's declared inputs (not a private physical
	// partition), so the chunks it leaves behind are drained by the
	// task's other workers. Absent means "unknown" and is treated as not
	// yieldable.
	yieldable map[int]bool
	// yielding marks workers asked to yield whose completion has not
	// been observed yet, so repeated preemption rounds do not over-yield.
	yielding map[int]bool
}

func (st *taskState) reset(epoch int) {
	st.epoch = epoch
	st.scheduled = false
	st.workers = 0
	st.doneWorkers = make(map[int]bool)
	st.mergeSched = false
	st.mergeDone = false
	st.renamed = false
	st.finished = false
	st.running = make(map[string]string)
	st.yieldable = make(map[int]bool)
	st.yielding = make(map[int]bool)
}

// partials returns the partial-output bag names for the task's current
// epoch (only meaningful for tasks with a merge procedure).
func (st *taskState) partials() []string {
	out := make([]string, 0, st.workers)
	for w := 0; w < st.workers; w++ {
		out = append(out, partialBag(st.spec.Outputs[0], w, st.epoch))
	}
	return out
}

type nodeState struct {
	lastBeat time.Time
	running  int
	slots    int
	dead     bool
}

// Master is the application master (§3.1): it drives the application's
// computation, schedules tasks as their input bags become ready, injects
// merge tasks, and recovers from compute-node failures. All of its durable
// state lives in the work bags, so a crashed master recovers by replaying
// them (§4.4).
//
// Skew mitigation is delegated to the control plane (internal/ctrl): the
// master forwards telemetry into the hub, evaluates the configured
// policies against the hub's versioned snapshots, and applies the
// surviving Actions transactionally. It makes no mitigation decisions of
// its own.
type Master struct {
	app     *App
	store   *bag.Store
	wb      *workBags
	cfg     MasterConfig
	control ClusterControl

	hub      *ctrl.Hub
	policies []ctrl.Policy
	// wantsStats: some installed policy consumes shuffle-edge sketches, so
	// the hub fetches them and finishTask captures a final EdgeMemory copy.
	wantsStats bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// stopped marks a deliberate Stop (crash simulation, recovery swap,
	// shutdown) as opposed to the caller's job context being cancelled.
	// A stopped master exits silently — a successor replays the work
	// bags; a cancelled job context is a job failure that must release
	// the job's scheduler state.
	stopped atomic.Bool

	mu         sync.Mutex
	tasks      map[string]*taskState
	sealed     map[string]bool
	nodes      map[string]*nodeState
	seenEvents map[string]bool // done-event dedup across rescans
	finished   int
	jobErr     error
	doneCh     chan struct{}
	doneOnce   sync.Once

	recoverCh chan string // dead compute nodes awaiting recovery

	doneScan  *bag.Scanner
	runScan   *bag.Scanner
	readyScan *bag.Scanner

	// edges tracks the app's partitioned shuffle bags (core/shuffle.go).
	// Accessed only from the master loop goroutine after NewMaster, except
	// for pmap which is swapped under m.mu.
	edges map[string]*shuffleEdge

	// counters for observability and tests
	clones       int
	rejects      int
	recoveries   int
	mergeTasks   int
	renameAdopts int
	speculative  int
	splits       int
	isolations   int
	yields       int

	// spans accumulates per-task profiler phase accounting carried on
	// done-bag events (guarded by m.mu, deduped by seenEvents like all
	// done evidence). profStart/profEnd bound the job wall clock for
	// Profile(); profEnd stays zero while the job is running.
	spans     []obs.TaskSpans
	profStart time.Time
	profEnd   time.Time

	// obs is the shared observer (nil-safe) plus this job's cached
	// metric handles; events carry cfg.Job.
	obs masterObs
}

// masterObs caches the master's per-job metric handles so the control
// loop never pays a registry lookup. All handles are nil-safe no-ops
// when no observer is installed.
type masterObs struct {
	o   *obs.Observer
	job string

	clones      *obs.Counter
	rejects     *obs.Counter
	speculative *obs.Counter
	splits      *obs.Counter
	isolations  *obs.Counter
	yields      *obs.Counter
	scheduled   *obs.Counter
	finished    *obs.Counter
	recoveries  *obs.Counter
	taskSpan    *obs.Histogram

	proposed   *obs.Counter
	applied    *obs.Counter
	suppressed *obs.Counter
}

func newMasterObs(o *obs.Observer, job string) masterObs {
	l := []string{"job", job}
	return masterObs{
		o:   o,
		job: job,

		clones:      o.Counter("hurricane_core_clones_total", l...),
		rejects:     o.Counter("hurricane_core_clone_rejects_total", l...),
		speculative: o.Counter("hurricane_core_speculative_clones_total", l...),
		splits:      o.Counter("hurricane_core_splits_total", l...),
		isolations:  o.Counter("hurricane_core_isolations_total", l...),
		yields:      o.Counter("hurricane_core_yields_total", l...),
		scheduled:   o.Counter("hurricane_core_tasks_scheduled_total", l...),
		finished:    o.Counter("hurricane_core_tasks_finished_total", l...),
		recoveries:  o.Counter("hurricane_core_recoveries_total", l...),
		taskSpan:    o.Histogram("hurricane_core_task_span_ns", l...),

		proposed:   o.Counter("hurricane_ctrl_actions_proposed_total", l...),
		applied:    o.Counter("hurricane_ctrl_actions_applied_total", l...),
		suppressed: o.Counter("hurricane_ctrl_actions_suppressed_total", l...),
	}
}

// emit appends one trace event attributed to this master's job.
func (mo *masterObs) emit(typ obs.EventType, subject, detail string) {
	mo.o.Emit(typ, mo.job, subject, detail)
}

// NewMaster creates a master for the app. The caller must have validated
// the app and sealed its source bags.
func NewMaster(app *App, store *bag.Store, control ClusterControl, cfg MasterConfig) *Master {
	cfg.fill()
	if cfg.Job == "" {
		cfg.Job = app.Name()
	}
	m := &Master{
		app:        app,
		store:      store,
		wb:         newWorkBags(store, app.Name()),
		cfg:        cfg,
		control:    control,
		tasks:      make(map[string]*taskState),
		sealed:     make(map[string]bool),
		nodes:      make(map[string]*nodeState),
		seenEvents: make(map[string]bool),
		doneCh:     make(chan struct{}),
		recoverCh:  make(chan string, 64),
	}
	for _, name := range app.Tasks() {
		st := &taskState{spec: app.Task(name)}
		st.reset(0)
		m.tasks[name] = st
	}
	for _, b := range app.sourceBags() {
		m.sealed[b] = true
	}
	m.edges = newShuffleEdges(app, store)
	m.doneScan = m.wb.doneScanner()
	m.runScan = m.wb.runningScanner()
	m.readyScan = m.wb.readyScanner()

	m.obs = newMasterObs(cfg.Obs, cfg.Job)
	m.policies = cfg.Policies
	if m.policies == nil {
		m.policies = DefaultPolicies(cfg)
	}
	hubCfg := ctrl.HubConfig{FetchInterval: cfg.SplitInterval, Obs: cfg.Obs, Job: cfg.Job}
	m.wantsStats = wantsEdgeStats(m.policies)
	if m.wantsStats && len(m.edges) > 0 {
		hubCfg.FetchStats = func(ctx context.Context, edge string) (*sketch.EdgeStats, error) {
			return store.FetchSketch(ctx, edge)
		}
	}
	hubCfg.SampleBag = func(ctx context.Context, bagName string) (*ctrl.BagTel, error) {
		stats, err := store.SampleSlots(ctx, bagName, cfg.SampleSlots)
		if err != nil {
			return nil, err
		}
		return &ctrl.BagTel{ReadBytes: stats.ReadBytes, RemainingBytes: stats.RemainingBytes()}, nil
	}
	m.hub = ctrl.NewHub(hubCfg)
	return m
}

// wantsEdgeStats reports whether any installed policy consumes shuffle
// edge sketches; if none does, the hub skips the storage-tier fetches.
func wantsEdgeStats(policies []ctrl.Policy) bool {
	for _, p := range policies {
		if c, ok := p.(ctrl.EdgeStatsConsumer); ok && c.WantsEdgeStats() {
			return true
		}
	}
	return false
}

// WorkBags exposes the app's work-bag interface (used by compute nodes).
func (m *Master) WorkBags() *workBags { return m.wb }

// Start launches the master's control loop.
func (m *Master) Start(parent context.Context) {
	m.mu.Lock()
	m.profStart = time.Now()
	m.mu.Unlock()
	if m.cfg.TraceID != "" {
		m.cfg.Obs.Tracer().SetJobTrace(m.cfg.Job, m.cfg.TraceID)
	}
	m.ctx, m.cancel = context.WithCancel(parent)
	m.wg.Add(1)
	go m.loop()
}

// Stop halts the master without completing the job (e.g. to simulate a
// master crash; compute and storage nodes keep running).
func (m *Master) Stop() {
	m.stopped.Store(true)
	if m.cancel != nil {
		m.cancel()
	}
	m.wg.Wait()
}

// Done returns a channel closed when the application completes (or fails).
func (m *Master) Done() <-chan struct{} { return m.doneCh }

// Err returns the job error, if any. Valid after Done is closed.
func (m *Master) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobErr
}

// Stats reports master activity counters.
type MasterStats struct {
	Clones        int // clones created
	CloneRejects  int // clone requests rejected (no slot or Eq. 2)
	MergeTasks    int // merge tasks injected
	RenameAdopts  int // sole-worker outputs adopted by rename
	Recoveries    int // compute-node failure recoveries
	Speculative   int // speculative clone attempts (paper future work)
	Splits        int // hot partitions re-hashed into sub-partitions
	Isolations    int // heavy-hitter keys isolated into dedicated bags
	Yields        int // clone workers preempted by fair-share leasing
	TasksFinished int
}

// ResealAll re-issues seal operations for every bag the master believes
// sealed. The cluster calls this after adding a storage node (§3.4) so
// the new node's (empty) share of already-sealed bags is marked sealed —
// otherwise consumers created with the enlarged cluster view would wait
// forever on the new node's unsealed empty slot.
func (m *Master) ResealAll(ctx context.Context) error {
	m.mu.Lock()
	var names []string
	for b, ok := range m.sealed {
		if ok {
			names = append(names, b)
		}
	}
	m.mu.Unlock()
	for _, b := range names {
		for _, phys := range m.physicalBags(b) {
			if err := m.store.Seal(ctx, phys); err != nil {
				return err
			}
		}
	}
	return nil
}

// physicalBags expands a logical bag name to the physical bags holding its
// data: the partition-map leaves for a partitioned shuffle bag, the name
// itself otherwise. Callers must not hold m.mu.
func (m *Master) physicalBags(name string) []string {
	m.mu.Lock()
	edge := m.edges[name]
	var pmap *shuffle.PartitionMap
	if edge != nil {
		pmap = edge.pmap
	}
	m.mu.Unlock()
	if pmap == nil {
		return []string{name}
	}
	return pmap.Leaves()
}

// RunningOn reports the compute nodes currently executing workers of the
// named task (from running-bag evidence).
func (m *Master) RunningOn(spec string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.tasks[spec]
	if st == nil {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	for _, node := range st.running {
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// Stats returns a snapshot of activity counters.
func (m *Master) Stats() MasterStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MasterStats{
		Clones:        m.clones,
		CloneRejects:  m.rejects,
		MergeTasks:    m.mergeTasks,
		RenameAdopts:  m.renameAdopts,
		Recoveries:    m.recoveries,
		Speculative:   m.speculative,
		Splits:        m.splits,
		Isolations:    m.isolations,
		Yields:        m.yields,
		TasksFinished: m.finished,
	}
}

// YieldClones asks up to n of the job's running clone workers to yield
// at their next chunk boundary — the scheduler's fair-share preemption
// path. A yielded clone finishes normally (its partial output keeps the
// work it already did; the remaining chunks are drained by the task's
// surviving workers through late binding), so preemption never loses or
// redoes work. Only clones known safe are selected: worker index > 0,
// consuming the task's declared inputs, with at least one other live
// worker left to drain the bag. Yields still in flight count against n,
// so repeated preemption rounds do not over-yield. It returns the number
// of yields newly requested.
func (m *Master) YieldClones(n int) int {
	if n <= 0 {
		return 0
	}
	type target struct {
		node, bpID string
		st         *taskState
		w          int
	}
	var targets []target
	m.mu.Lock()
	inflight := 0
	for _, name := range m.app.Tasks() {
		inflight += len(m.tasks[name].yielding)
	}
	budget := n - inflight
	for _, name := range m.app.Tasks() {
		if budget <= 0 {
			break
		}
		st := m.tasks[name]
		if !st.scheduled || st.finished {
			continue
		}
		live := st.workers - len(st.doneWorkers)
		// Leave at least one worker (beyond those already yielding) to
		// drain the input bag.
		allowed := live - len(st.yielding) - 1
		// Prefer the most recent clones: they have consumed the least.
		for w := st.workers - 1; w >= 1 && allowed > 0 && budget > 0; w-- {
			if st.doneWorkers[w] || st.yielding[w] || !st.yieldable[w] {
				continue
			}
			bpID := blueprintID(st.spec.Name, w, st.epoch)
			node, running := st.running[bpID]
			if !running {
				continue // not claimed yet: no slot to free
			}
			st.yielding[w] = true
			m.yields++
			targets = append(targets, target{node: node, bpID: bpID, st: st, w: w})
			allowed--
			budget--
		}
	}
	m.mu.Unlock()
	yielded := 0
	for _, t := range targets {
		if m.control.YieldWorker(t.node, t.bpID) {
			yielded++
			m.obs.yields.Inc()
			m.obs.emit(obs.EvCloneYielded, t.bpID, "node="+t.node)
			continue
		}
		// Worker already gone (completed or killed): roll back.
		m.mu.Lock()
		delete(t.st.yielding, t.w)
		m.yields--
		m.mu.Unlock()
	}
	return yielded
}

// ---- masterAPI (telemetry forwarding from compute nodes) ----

// overload implements masterAPI: the signal is forwarded into the
// telemetry hub, where the configured policies will see it in the next
// snapshot.
func (m *Master) overload(node string, bp *Blueprint, busy float64) {
	m.hub.OverloadSignal(ctrl.Overload{
		Node:   node,
		Task:   bp.Spec,
		Epoch:  bp.Epoch,
		Worker: bp.Worker,
		Merge:  bp.Kind == KindMerge,
		Inputs: bp.Inputs,
		Busy:   busy,
	})
}

// heartbeat implements masterAPI. Liveness bookkeeping for failure
// detection stays here; the telemetry copy goes to the hub (which also
// wakes the control loop).
func (m *Master) heartbeat(node string, running, slots int) {
	m.mu.Lock()
	ns := m.nodes[node]
	if ns == nil {
		ns = &nodeState{}
		m.nodes[node] = ns
	}
	ns.lastBeat = time.Now()
	ns.running = running
	ns.slots = slots
	ns.dead = false
	m.mu.Unlock()
	m.hub.Heartbeat(node, running, slots)
}

// nudge implements masterAPI: compute nodes call it after inserting
// work-bag records so the master re-scans immediately.
func (m *Master) nudge() { m.hub.Nudge() }

// staleBlueprint implements masterAPI: a blueprint whose epoch predates
// the task's current epoch is a leftover from before a failure recovery
// and must not run. Epochs only ever advance, so a false negative here
// (e.g. from a master that has not replayed the recovery yet) merely
// defers the kill to the recovery's own sweep.
func (m *Master) staleBlueprint(bp *Blueprint) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.tasks[bp.Spec]
	return st != nil && bp.Epoch < st.epoch
}

// ---- control loop ----

// fallbackInterval is the idle loop's timer: the loop is event-driven,
// and this bounds how long it sleeps when no telemetry arrives (all nodes
// silent). PollInterval, when set, pins it for compatibility; otherwise a
// coarse default is clamped by the deadlines that must not be overslept.
func (m *Master) fallbackInterval() time.Duration {
	if m.cfg.PollInterval > 0 {
		return m.cfg.PollInterval
	}
	d := 50 * time.Millisecond
	if m.cfg.FailTimeout > 0 && m.cfg.FailTimeout/4 < d {
		d = m.cfg.FailTimeout / 4
	}
	if m.cfg.SpeculativeCloning && m.cfg.SpeculativeAfter/4 < d {
		d = m.cfg.SpeculativeAfter / 4
	}
	if len(m.edges) > 0 && m.cfg.SplitInterval < d {
		d = m.cfg.SplitInterval
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func (m *Master) loop() {
	defer m.wg.Done()
	m.publishSeeds()
	fallback := m.fallbackInterval()
	timer := time.NewTimer(fallback)
	defer timer.Stop()
	for {
		progress, err := m.tick()
		if err != nil {
			if m.ctx.Err() != nil && m.stopped.Load() {
				// The master itself was stopped (crash simulation or
				// shutdown) and the in-flight pass was cut mid-operation.
				// That is not a job failure: a successor master replays
				// the work bags and finishes the job.
				return
			}
			// Any other error — including the *job's* context being
			// cancelled by its submitter — fails the job, so the
			// scheduler releases its lease, concurrency slot, and name
			// claims instead of wedging a zombie.
			m.fail(err)
			return
		}
		m.mu.Lock()
		done := m.finished == len(m.tasks)
		m.mu.Unlock()
		if done {
			m.markDone()
			return
		}
		if progress {
			// Something changed; cascade immediately (a newly sealed bag
			// may make the next task schedulable, a rename adoption
			// completes its task, ...).
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(fallback)
		select {
		case <-m.hub.Wake():
		case <-timer.C:
		case <-m.ctx.Done():
			if !m.stopped.Load() {
				m.fail(m.ctx.Err()) // job context cancelled by the submitter
			}
			return
		}
	}
}

func (m *Master) fail(err error) {
	m.mu.Lock()
	if m.jobErr == nil {
		m.jobErr = err
	}
	m.mu.Unlock()
	m.markDone()
}

// markDone closes the done channel exactly once and freezes the
// profiler's job-wall end time.
func (m *Master) markDone() {
	m.doneOnce.Do(func() {
		m.mu.Lock()
		m.profEnd = time.Now()
		m.mu.Unlock()
		close(m.doneCh)
	})
}

// tick performs one pass of the master's control loop. It reports whether
// the pass made observable progress (absorbed records, applied actions,
// scheduled or completed tasks); the loop re-runs immediately on progress
// and blocks on telemetry otherwise.
func (m *Master) tick() (bool, error) {
	absorbed, err := m.absorbRecords()
	if err != nil {
		return false, err
	}
	m.mu.Lock()
	if m.jobErr != nil {
		err := m.jobErr
		m.mu.Unlock()
		return false, err
	}
	m.mu.Unlock()
	recovered := m.drainRecoveries()
	applied, err := m.controlPass()
	if err != nil {
		return false, err
	}
	scheduled, err := m.schedulePass()
	if err != nil {
		return false, err
	}
	completed, err := m.completionPass()
	if err != nil {
		return false, err
	}
	m.failureDetectPass()
	return absorbed+recovered+applied+scheduled+completed > 0, nil
}

// controlPass runs the adaptive control plane: adopt partition maps
// published by a predecessor master, build a telemetry snapshot, evaluate
// the configured policies, and apply the arbitrated actions. It returns
// the number of state-changing actions applied.
func (m *Master) controlPass() (int, error) {
	for _, name := range edgeNames(m.edges) {
		if err := m.adoptPublishedMaps(m.edges[name]); err != nil {
			return 0, err
		}
	}
	if len(m.policies) == 0 {
		return 0, nil
	}
	snap := m.hub.Snapshot(m.ctx, m.fillSnapshot)
	// Retain fetched edge sketches as skew memory: the hub only carries
	// them in the snapshot, but EdgeMemory must outlive the job.
	for name, tel := range snap.Edges {
		if tel.Stats == nil {
			continue
		}
		if edge := m.edges[name]; edge != nil {
			m.mu.Lock()
			edge.lastStats = tel.Stats
			m.mu.Unlock()
		}
	}
	// Propose and arbitrate separately (ctrl.Evaluate fuses the two) so
	// the proposed-versus-surviving gap is observable: the suppressed
	// counter is the arbiter's work — duplicate clones collapsed, clone
	// budgets enforced, refinements deduplicated per edge.
	var proposed []ctrl.Action
	for _, p := range m.policies {
		proposed = append(proposed, p.Evaluate(snap)...)
	}
	actions := ctrl.Arbitrate(snap, proposed)
	m.obs.proposed.Add(uint64(len(proposed)))
	m.obs.suppressed.Add(uint64(len(proposed) - len(actions)))
	applied, err := m.applyActions(actions)
	m.obs.applied.Add(uint64(applied))
	return applied, err
}

// fillSnapshot contributes the master's authoritative task and edge state
// to a telemetry snapshot. Pure forwarding: no decisions are made here.
func (m *Master) fillSnapshot(snap *ctrl.Snapshot) {
	snap.Job = m.cfg.Job
	snap.FreeSlots = m.control.FreeSlots()
	snap.TotalSlots = m.control.TotalSlots()
	if li, ok := m.control.(LeaseInfo); ok {
		snap.LeaseCapped = true
		snap.LeaseSlots = li.LeaseSlots()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, st := range m.tasks {
		t := &ctrl.TaskTel{
			Name:        name,
			Epoch:       st.epoch,
			Scheduled:   st.scheduled,
			Finished:    st.finished,
			Workers:     st.workers,
			DoneWorkers: len(st.doneWorkers),
			StartedAt:   st.startedAt,
			LastClone:   st.lastClone,
			NoClone:     st.spec.NoClone,
			MaxClones:   st.spec.MaxClones,
			HasMerge:    st.spec.requiresMerge(),
			Inputs:      st.spec.Inputs,
		}
		if len(st.spec.Inputs) == 1 {
			if edge := m.edges[st.spec.Inputs[0]]; edge != nil {
				t.ConsumesEdge = edge.name
				t.EdgeSpread = edge.spec.Spread
			}
		}
		snap.Tasks[name] = t
	}
	for name, edge := range m.edges {
		active := true
		for _, p := range edge.producers {
			if m.tasks[p].finished {
				active = false // producers finishing: map is (about to be) final
				break
			}
		}
		if edge.consumer != "" && m.tasks[edge.consumer].scheduled {
			active = false
		}
		snap.Edges[name] = &ctrl.EdgeTel{
			Name:         name,
			PMap:         edge.pmap,
			Spread:       edge.spec.Spread,
			Active:       active,
			Unsplittable: edge.splitTried,
		}
	}
}

// applyActions validates and applies arbitrated control-plane actions
// against the master's authoritative state, in one place. An action whose
// precondition no longer holds is dropped (the next snapshot will
// re-propose if still warranted). It returns the number of state-changing
// actions applied.
func (m *Master) applyActions(actions []ctrl.Action) (int, error) {
	applied := 0
	for _, a := range actions {
		switch act := a.(type) {
		case ctrl.CloneTask:
			ok, err := m.applyClone(act)
			if err != nil {
				return applied, err
			}
			if ok {
				applied++
			}
		case ctrl.RejectClone:
			m.mu.Lock()
			m.rejects++
			if act.Speculative {
				m.speculative++
			}
			m.mu.Unlock()
			m.obs.rejects.Inc()
		case ctrl.SplitPartition:
			ok, err := m.applySplit(act)
			if err != nil {
				return applied, err
			}
			if ok {
				applied++
			}
		case ctrl.IsolateKey:
			ok, err := m.applyIsolate(act)
			if err != nil {
				return applied, err
			}
			if ok {
				applied++
			}
		case ctrl.MarkUnsplittable:
			if edge := m.edges[act.Edge]; edge != nil && !edge.splitTried[act.Leaf] {
				edge.splitTried[act.Leaf] = true
				applied++
			}
		default:
			// The action vocabulary is closed (see ctrl.Action): a type
			// the master does not recognize has no apply path and is
			// dropped. Custom policies extend behavior by composing the
			// built-in actions, not by inventing new ones.
		}
	}
	return applied, nil
}

// applyClone applies one CloneTask action: hand out the next worker index
// and schedule it like any other task ("the master performs task cloning
// by scheduling a copy of the task on an idle node, as it would any other
// task", §3.2).
func (m *Master) applyClone(act ctrl.CloneTask) (bool, error) {
	m.mu.Lock()
	st := m.tasks[act.Task]
	if st == nil || st.epoch != act.Epoch || !st.scheduled || st.finished || st.spec.NoClone {
		m.mu.Unlock()
		return false, nil
	}
	maxWorkers := m.control.TotalSlots()
	if st.spec.MaxClones > 0 && st.spec.MaxClones < maxWorkers {
		maxWorkers = st.spec.MaxClones
	}
	if st.workers >= maxWorkers {
		m.mu.Unlock()
		return false, nil
	}
	w := st.workers
	st.workers++
	st.lastClone = time.Now()
	m.clones++
	if act.Speculative {
		m.speculative++
	}
	// A clone on the task's declared inputs shares them with the other
	// workers and is therefore safe to preempt; a clone bound to a
	// specific physical partition bag is not (nobody else drains it).
	st.yieldable[w] = act.Inputs == nil
	bp := m.blueprintFor(st, w, act.Inputs)
	m.mu.Unlock()
	if err := m.wb.pushReady(m.ctx, bp); err != nil {
		return false, err
	}
	m.obs.clones.Inc()
	detail := fmt.Sprintf("worker=%d", w)
	if act.Speculative {
		m.obs.speculative.Inc()
		detail += " speculative"
	}
	m.obs.emit(obs.EvTaskCloned, act.Task, detail)
	return true, nil
}

// absorbRecords folds new ready/running/done records into master state,
// returning how many records were seen. All three scans are non-consuming
// and idempotent, which is what lets a recovered master rebuild by
// rescanning from the start.
func (m *Master) absorbRecords() (int, error) {
	seen := 0
	if err := drainBlueprints(m.ctx, m.readyScan, func(bp *Blueprint) error {
		seen++
		m.mu.Lock()
		defer m.mu.Unlock()
		m.applyScheduledEvidence(bp.Spec, bp.Epoch, bp.Worker, bp.Kind == KindMerge)
		// The ready bag carries full blueprints, so it is also the replay
		// source for which workers are preemptible: this is how a
		// recovered master relearns its predecessor's yieldable clones.
		if bp.Kind == KindTask {
			if st := m.tasks[bp.Spec]; st != nil && bp.Epoch == st.epoch {
				st.yieldable[bp.Worker] = slices.Equal(bp.Inputs, st.spec.Inputs)
			}
		}
		return nil
	}); err != nil {
		return seen, err
	}
	if err := drainEvents(m.ctx, m.runScan, func(e *event) error {
		seen++
		m.mu.Lock()
		defer m.mu.Unlock()
		m.applyScheduledEvidence(e.Spec, e.Epoch, e.Worker, e.Merge)
		if st := m.tasks[e.Spec]; st != nil && e.Epoch == st.epoch {
			if _, done := st.doneWorkers[e.Worker]; !done || e.Merge {
				st.running[e.TaskID] = e.Node
			}
		}
		return nil
	}); err != nil {
		return seen, err
	}
	err := drainEvents(m.ctx, m.doneScan, func(e *event) error {
		seen++
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.applyDone(e)
	})
	return seen, err
}

// applyScheduledEvidence records that worker w of (spec, epoch) was
// scheduled, whether by this master instance or a predecessor.
func (m *Master) applyScheduledEvidence(spec string, epoch, worker int, isMerge bool) {
	st := m.tasks[spec]
	if st == nil || epoch < st.epoch {
		return
	}
	if epoch > st.epoch {
		// Evidence from a future epoch (scheduled by a predecessor after
		// a recovery this instance hasn't replayed yet).
		st.reset(epoch)
	}
	st.scheduled = true
	if isMerge {
		st.mergeSched = true
		return
	}
	if worker+1 > st.workers {
		st.workers = worker + 1
	}
	if st.startedAt.IsZero() {
		st.startedAt = time.Now()
	}
}

// applyDone folds one done-bag event into task state.
func (m *Master) applyDone(e *event) error {
	if m.seenEvents[e.TaskID+"/done"] {
		return nil
	}
	m.seenEvents[e.TaskID+"/done"] = true
	st := m.tasks[e.Spec]
	if st == nil {
		return fmt.Errorf("core: done event for unknown task %q", e.Spec)
	}
	if e.Epoch != st.epoch {
		return nil // stale epoch: ignore
	}
	if !e.OK {
		m.jobErr = fmt.Errorf("core: task %s failed on %s: %s", e.TaskID, e.Node, e.Err)
		return nil
	}
	delete(st.running, e.TaskID)
	if e.Spans != nil {
		m.spans = append(m.spans, *e.Spans)
		// Feed the straggler watchdog: the p99/p50 spread of this
		// histogram is the per-sample straggler signal.
		m.obs.taskSpan.Observe(e.Spans.WallNS())
	}
	if e.Merge {
		st.mergeDone = true
		return nil
	}
	m.applyScheduledEvidence(e.Spec, e.Epoch, e.Worker, false)
	st.doneWorkers[e.Worker] = true
	delete(st.yielding, e.Worker)
	return nil
}

// schedulePass schedules every unscheduled task whose input bags are all
// sealed ("the master ... schedules new tasks once their dependencies have
// been completed", §4.1). Pipelined tasks are scheduled as soon as every
// producer of their input bags is scheduled: their workers stream chunks
// as they appear and terminate when the bags seal and drain. It returns
// the number of tasks scheduled.
func (m *Master) schedulePass() (int, error) {
	m.mu.Lock()
	var toSchedule []*taskState
	var leafAssign [][]string
	for _, name := range m.app.Tasks() {
		st := m.tasks[name]
		if st.scheduled || st.finished {
			continue
		}
		ready := true
		for _, in := range st.spec.Inputs {
			if m.sealed[in] {
				continue
			}
			if st.spec.Pipelined && m.producersScheduled(in) {
				continue
			}
			ready = false
			break
		}
		if ready {
			for _, in := range st.spec.ScanInputs {
				if !m.sealed[in] {
					ready = false
					break
				}
			}
		}
		if ready {
			st.scheduled = true
			st.startedAt = time.Now()
			// A consumer of a partitioned bag gets one worker per
			// physical partition — by this point the edge's partition map
			// is final (its producers sealed the bag before this task
			// became ready, and splitting stops when producers finish).
			leaves := m.partitionLeavesFor(st.spec)
			if leaves == nil {
				st.workers = 1
			} else {
				st.workers = len(leaves)
			}
			toSchedule = append(toSchedule, st)
			leafAssign = append(leafAssign, leaves)
		}
	}
	m.mu.Unlock()
	scheduled := 0
	for i, st := range toSchedule {
		leaves := leafAssign[i]
		if leaves == nil {
			if err := m.wb.pushReady(m.ctx, m.blueprintFor(st, 0, nil)); err != nil {
				return scheduled, err
			}
			scheduled++
			m.obs.scheduled.Inc()
			m.obs.emit(obs.EvTaskScheduled, st.spec.Name, "workers=1")
			continue
		}
		for w, leaf := range leaves {
			if err := m.wb.pushReady(m.ctx, m.blueprintFor(st, w, []string{leaf})); err != nil {
				return scheduled, err
			}
			scheduled++
		}
		m.obs.scheduled.Inc()
		m.obs.emit(obs.EvTaskScheduled, st.spec.Name,
			fmt.Sprintf("workers=%d (one per partition)", len(leaves)))
	}
	return scheduled, nil
}

// partitionLeavesFor returns the physical partition bags a task consumes,
// or nil for ordinary tasks. Validate guarantees a partitioned consumer
// has exactly one input.
func (m *Master) partitionLeavesFor(spec *TaskSpec) []string {
	if len(spec.Inputs) != 1 {
		return nil
	}
	edge := m.edges[spec.Inputs[0]]
	if edge == nil {
		return nil
	}
	return edge.pmap.Leaves()
}

// producersScheduled reports whether every producer task of a bag has
// been scheduled (pipelined consumers may then start streaming). A bag
// with no producers and no seal never becomes ready, so source bags still
// require sealing.
func (m *Master) producersScheduled(bagName string) bool {
	prods := m.app.Producers(bagName)
	if len(prods) == 0 {
		return false
	}
	for _, p := range prods {
		if !m.tasks[p].scheduled {
			return false
		}
	}
	return true
}

// blueprintFor builds the blueprint for worker w of a task at its current
// epoch. Tasks with a merge procedure write to private partial bags.
// inputs overrides the consumed bags (partitioned consumers: each worker
// owns one physical partition); nil means the spec's declared inputs.
func (m *Master) blueprintFor(st *taskState, w int, inputs []string) *Blueprint {
	if inputs == nil {
		inputs = st.spec.Inputs
	}
	outputs := st.spec.Outputs
	if st.spec.requiresMerge() {
		outputs = []string{partialBag(st.spec.Outputs[0], w, st.epoch)}
	}
	return &Blueprint{
		ID:          blueprintID(st.spec.Name, w, st.epoch),
		Spec:        st.spec.Name,
		Kind:        KindTask,
		Worker:      w,
		Epoch:       st.epoch,
		Inputs:      inputs,
		Outputs:     outputs,
		ScanInputs:  st.spec.ScanInputs,
		ScheduledAt: time.Now().UnixNano(),
	}
}

// completionPass advances tasks whose workers have all finished: injecting
// merge tasks, adopting sole-worker outputs by rename, sealing output
// bags, and marking tasks finished. It returns the number of state
// transitions made.
func (m *Master) completionPass() (int, error) {
	changed := 0
	for _, name := range m.app.Tasks() {
		m.mu.Lock()
		st := m.tasks[name]
		if !st.scheduled || st.finished || st.workers == 0 || len(st.doneWorkers) < st.workers {
			m.mu.Unlock()
			continue
		}
		// All workers of the current epoch are done.
		if !st.spec.requiresMerge() {
			m.mu.Unlock()
			if err := m.finishTask(st); err != nil {
				return changed, err
			}
			changed++
			continue
		}
		switch {
		case st.mergeDone:
			m.mu.Unlock()
			if err := m.finishTask(st); err != nil {
				return changed, err
			}
			if err := m.gcPartials(st); err != nil {
				return changed, err
			}
			changed++
		case st.workers == 1 && !st.renamed:
			// A task that was never cloned needs no merge: adopt the
			// sole partial output as the final output by rename.
			st.renamed = true
			m.mu.Unlock()
			if err := m.store.Rename(m.ctx, partialBag(st.spec.Outputs[0], 0, st.epoch), st.spec.Outputs[0]); err != nil {
				return changed, err
			}
			m.mu.Lock()
			m.renameAdopts++
			st.mergeDone = true
			m.mu.Unlock()
			changed++
		case st.workers > 1 && !st.mergeSched:
			st.mergeSched = true
			partials := st.partials()
			epoch := st.epoch
			m.mu.Unlock()
			// Seal partials so the merge task's removes terminate.
			for _, p := range partials {
				if err := m.store.Seal(m.ctx, p); err != nil {
					return changed, err
				}
			}
			mbp := &Blueprint{
				ID:          blueprintID(st.spec.Name+"+merge", 0, epoch),
				Spec:        st.spec.Name,
				Kind:        KindMerge,
				Epoch:       epoch,
				Inputs:      partials,
				Outputs:     st.spec.Outputs,
				ScheduledAt: time.Now().UnixNano(),
			}
			if err := m.wb.pushReady(m.ctx, mbp); err != nil {
				return changed, err
			}
			m.mu.Lock()
			m.mergeTasks++
			m.mu.Unlock()
			changed++
		default:
			m.mu.Unlock()
		}
	}
	return changed, nil
}

// finishTask marks a task finished and seals any output bag all of whose
// producers have finished, making downstream tasks schedulable.
func (m *Master) finishTask(st *taskState) error {
	m.mu.Lock()
	if st.finished {
		m.mu.Unlock()
		return nil
	}
	st.finished = true
	m.finished++
	m.obs.finished.Inc()
	m.obs.emit(obs.EvTaskFinished, st.spec.Name, fmt.Sprintf("workers=%d", st.workers))
	var toSeal []string
	for _, out := range st.spec.Outputs {
		allDone := true
		for _, p := range m.app.Producers(out) {
			if !m.tasks[p].finished {
				allDone = false
				break
			}
		}
		if allDone && !m.sealed[out] {
			m.sealed[out] = true
			toSeal = append(toSeal, out)
		}
	}
	m.mu.Unlock()
	for _, b := range toSeal {
		for _, phys := range m.physicalBags(b) {
			if err := m.store.Seal(m.ctx, phys); err != nil {
				return err
			}
		}
		// A sealed shuffle edge splits no further, so its per-writer
		// sketch state on the storage tier has served its routing
		// purpose. Capture the final merged sketch first — short jobs
		// (streaming windows) often seal before the hub's rate-limited
		// fetch ever ran, and this is the last chance to learn the
		// edge's key distribution for EdgeMemory — then wipe the
		// per-writer slot state and republish the merged view under a
		// single sentinel writer. The republish is what the consumer
		// side's warm fast path (WarmTopKeys64 seeding dense heavy-key
		// accumulator slots) reads: consumers of a partitioned edge are
		// scheduled only after the edge seals (§4.1), so without it the
		// sketch would always be gone before any consumer could look.
		// Best-effort throughout (the sketch is advisory); the merged
		// copy is deleted with the rest of the job's derived state on
		// Discard/Reset.
		if edge := m.edges[b]; edge != nil {
			stats, err := m.store.FetchSketch(m.ctx, b)
			if err != nil || stats.Total() == 0 {
				stats = nil
			}
			if stats != nil && m.wantsStats {
				m.mu.Lock()
				edge.lastStats = stats
				m.mu.Unlock()
			}
			if err := m.store.DeleteSketch(m.ctx, b); err != nil {
				return err
			}
			if stats != nil {
				_ = m.store.PushSketch(m.ctx, b, "!final", stats)
			}
		}
	}
	return nil
}

// gcPartials garbage-collects a task's partial bags after its merge
// completes.
func (m *Master) gcPartials(st *taskState) error {
	m.mu.Lock()
	partials := st.partials()
	m.mu.Unlock()
	for _, p := range partials {
		if err := m.store.Delete(m.ctx, p); err != nil {
			return err
		}
	}
	return nil
}
