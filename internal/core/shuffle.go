package core

import (
	"context"
	"sort"
	"time"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/shuffle"
	"repro/internal/sketch"
)

// shuffleEdge is the master's state for one partitioned shuffle bag: the
// current partition map, a scanner over the edge's published-map bag (so a
// recovered master replays split history like it replays the work bags),
// and split bookkeeping.
type shuffleEdge struct {
	name      string
	spec      *BagSpec
	pmap      *shuffle.PartitionMap // swapped under m.mu; read by other goroutines
	scan      *bag.Scanner
	producers []string
	consumer  string // consuming task name, or ""

	lastCheck  time.Time // last sketch fetch (rate-limits detection RPCs)
	lastSplit  time.Time
	splitTried map[string]bool // leaves that cannot be refined further
}

// newShuffleEdges builds edge state for every partitioned bag of the app.
func newShuffleEdges(app *App, store *bag.Store) map[string]*shuffleEdge {
	edges := make(map[string]*shuffleEdge)
	for _, name := range app.Bags() {
		spec := app.BagSpecFor(name)
		if spec == nil || spec.Partitions <= 0 {
			continue
		}
		consumer := ""
		if cons := app.Consumers(name); len(cons) > 0 {
			consumer = cons[0]
		}
		edges[name] = &shuffleEdge{
			name:       name,
			spec:       spec,
			pmap:       shuffle.BaseMap(name, spec.Partitions),
			scan:       store.Scanner(shuffle.PMapBag(name)),
			producers:  app.Producers(name),
			consumer:   consumer,
			splitTried: make(map[string]bool),
		}
	}
	return edges
}

// shufflePass is the master-side half of the skew-aware shuffle: it adopts
// partition maps published by a predecessor master, then — for edges still
// being produced — fetches the merged producer sketches and splits the
// hottest partition when it exceeds the configured imbalance ratio.
// Splitting only redirects records not yet written, so it is always safe;
// it stops once the edge's consumer is scheduled (the worker↔partition
// assignment is fixed from then on).
func (m *Master) shufflePass() error {
	if len(m.edges) == 0 {
		return nil
	}
	names := make([]string, 0, len(m.edges))
	for n := range m.edges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		edge := m.edges[name]
		if err := m.adoptPublishedMaps(edge); err != nil {
			return err
		}
		if m.cfg.DisableSplitting {
			continue
		}
		m.mu.Lock()
		active := true
		for _, p := range edge.producers {
			if m.tasks[p].finished {
				active = false // producers finishing: map is (about to be) final
				break
			}
		}
		if edge.consumer != "" && m.tasks[edge.consumer].scheduled {
			active = false
		}
		m.mu.Unlock()
		// Rate-limit the detection RPC itself, not just the splits: a
		// fetch makes the storage node decode and merge every producer's
		// sketch blob, far too much work for every master tick.
		if !active || time.Since(edge.lastCheck) < m.cfg.SplitInterval {
			continue
		}
		edge.lastCheck = time.Now()
		stats, err := m.store.FetchSketch(m.ctx, name)
		if err != nil {
			continue // detection is advisory; retry next interval
		}
		if err := m.decideSplit(edge, stats); err != nil {
			return err
		}
	}
	return nil
}

// adoptPublishedMaps folds newer published partition-map versions into the
// edge state. During normal operation the master only sees its own
// publications; after a master crash the replay reconstructs the split
// history exactly (the pmap bag is append-only and versions are ordered).
func (m *Master) adoptPublishedMaps(edge *shuffleEdge) error {
	return drainPartitionMaps(m.ctx, edge.scan, func(pm *shuffle.PartitionMap) {
		if pm.Bag != edge.name {
			return
		}
		m.mu.Lock()
		if pm.Version > edge.pmap.Version {
			edge.pmap = pm
		}
		m.mu.Unlock()
	})
}

func drainPartitionMaps(ctx context.Context, sc *bag.Scanner, fn func(*shuffle.PartitionMap)) error {
	_, err := sc.Drain(ctx, func(c chunk.Chunk) error {
		pm, err := shuffle.DecodePartitionMap(c)
		if err != nil {
			return nil // tolerate foreign records in the control bag
		}
		fn(pm)
		return nil
	})
	return err
}

// decideSplit inspects one edge's merged producer statistics and refines
// the partition map if a physical partition is overloaded. Two refinements
// exist, mirroring the two skew shapes:
//
//   - many medium keys piled onto one partition → re-hash the partition
//     into SplitFan sub-partitions (Reshape-style);
//   - a single heavy-hitter key dominating the partition → isolate the key
//     into a dedicated bag (SharesSkew-style), spread record-wise over
//     SplitFan bags when the edge permits it.
func (m *Master) decideSplit(edge *shuffleEdge, stats *sketch.EdgeStats) error {
	total := stats.Total()
	if total < uint64(m.cfg.SplitMinRecords) {
		return nil
	}
	m.mu.Lock()
	pmap := edge.pmap
	m.mu.Unlock()
	leaves := pmap.Leaves()
	mean := float64(total) / float64(len(leaves))
	hottest, hotCount := "", uint64(0)
	for _, leaf := range leaves {
		if c := stats.Counts[leaf]; c > hotCount && !edge.splitTried[leaf] {
			hottest, hotCount = leaf, c
		}
	}
	if hottest == "" || float64(hotCount) <= m.cfg.SplitImbalance*mean {
		return nil
	}

	next := pmap.Clone()
	// Prefer isolating a dominant heavy-hitter key: re-hashing cannot help
	// when one key carries the partition.
	var top *sketch.HeavyKey
	for i := range stats.Heavy {
		hk := &stats.Heavy[i]
		if next.IsIsolated(shuffle.KeyHash(hk.Key)) {
			continue
		}
		if pmap.LeafForKey(hk.Key) != hottest {
			continue
		}
		if top == nil || hk.Count > top.Count {
			top = hk
		}
	}
	switch {
	case top != nil && float64(top.Count) >= m.cfg.IsolateFraction*float64(hotCount):
		fan := 1
		if edge.spec.Spread {
			fan = m.cfg.SplitFan
		}
		next.Isolated = append(next.Isolated, shuffle.Isolation{
			Hash: shuffle.KeyHash(top.Key), Fan: fan,
		})
		m.mu.Lock()
		m.isolations++
		m.mu.Unlock()
	default:
		p, ok := next.BasePartitionIndex(hottest)
		if !ok {
			// Sub-partition or isolated bag still hot with no dominant
			// key to extract: nothing further to refine.
			edge.splitTried[hottest] = true
			return nil
		}
		if next.Splits == nil {
			next.Splits = make(map[int]int)
		}
		next.Splits[p] = m.cfg.SplitFan
		m.mu.Lock()
		m.splits++
		m.mu.Unlock()
	}
	next.Version++
	// Publish first, adopt second: producers must never observe a map the
	// master (and a recovered successor) would not also know about.
	if err := m.store.Bag(shuffle.PMapBag(edge.name)).Insert(m.ctx, next.Encode()); err != nil {
		return err
	}
	m.mu.Lock()
	edge.pmap = next
	m.mu.Unlock()
	edge.lastSplit = time.Now()
	return nil
}
