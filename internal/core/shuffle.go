package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/ctrl"
	"repro/internal/obs"
	"repro/internal/shuffle"
	"repro/internal/sketch"
)

// EdgeMemory is what a finished job remembers about one partitioned
// shuffle edge: the final partition map (base layout plus every runtime
// split and isolation) and the last merged producer sketch. The streaming
// subsystem feeds a window's EdgeMemory into shuffle.WarmStart to seed
// the next window's partitioner, so known-hot keys are pre-split or
// pre-isolated instead of rediscovered from scratch each window.
type EdgeMemory struct {
	PMap  *shuffle.PartitionMap
	Stats *sketch.EdgeStats
}

// EdgeMemory snapshots the master's per-edge skew memory, keyed by the
// (namespaced) logical bag name. Valid at any time; most useful after the
// job completes, when every edge's map is final.
func (m *Master) EdgeMemory() map[string]EdgeMemory {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]EdgeMemory, len(m.edges))
	for name, e := range m.edges {
		out[name] = EdgeMemory{PMap: e.pmap, Stats: e.lastStats}
	}
	return out
}

// shuffleEdge is the master's state for one partitioned shuffle bag: the
// current partition map, a scanner over the edge's published-map bag (so a
// recovered master replays split history like it replays the work bags),
// and refinement bookkeeping. The *decision* to refine lives in the
// control plane's policies (internal/ctrl); this file only tracks state
// and applies the resulting actions.
type shuffleEdge struct {
	name      string
	spec      *BagSpec
	pmap      *shuffle.PartitionMap // swapped under m.mu; read by other goroutines
	scan      *bag.Scanner
	producers []string
	consumer  string // consuming task name, or ""

	splitTried map[string]bool // leaves that cannot be refined further

	// lastStats is the most recent merged producer sketch observed for the
	// edge (refreshed from control-plane fetches and captured one final
	// time when the edge seals, just before its storage-side sketch state
	// is deleted). It survives job completion so Master.EdgeMemory can hand
	// it to a successor — the streaming subsystem's cross-window skew
	// memory. Guarded by m.mu.
	lastStats *sketch.EdgeStats
}

// newShuffleEdges builds edge state for every partitioned bag of the app.
func newShuffleEdges(app *App, store *bag.Store) map[string]*shuffleEdge {
	edges := make(map[string]*shuffleEdge)
	for _, name := range app.Bags() {
		spec := app.BagSpecFor(name)
		if spec == nil || spec.Partitions <= 0 {
			continue
		}
		consumer := ""
		if cons := app.Consumers(name); len(cons) > 0 {
			consumer = cons[0]
		}
		edges[name] = &shuffleEdge{
			name:       name,
			spec:       spec,
			pmap:       shuffle.BaseMap(name, spec.Partitions),
			scan:       store.Scanner(shuffle.PMapBag(name)),
			producers:  app.Producers(name),
			consumer:   consumer,
			splitTried: make(map[string]bool),
		}
	}
	return edges
}

// edgeNames returns the edge map's keys in deterministic order.
func edgeNames(edges map[string]*shuffleEdge) []string {
	out := make([]string, 0, len(edges))
	for n := range edges {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// adoptPublishedMaps folds newer published partition-map versions into the
// edge state. During normal operation the master only sees its own
// publications; after a master crash the replay reconstructs the split
// history exactly (the pmap bag is append-only and versions are ordered).
func (m *Master) adoptPublishedMaps(edge *shuffleEdge) error {
	return drainPartitionMaps(m.ctx, edge.scan, func(pm *shuffle.PartitionMap) {
		if pm.Bag != edge.name {
			return
		}
		m.mu.Lock()
		if pm.Version > edge.pmap.Version {
			edge.pmap = pm
		}
		m.mu.Unlock()
	})
}

func drainPartitionMaps(ctx context.Context, sc *bag.Scanner, fn func(*shuffle.PartitionMap)) error {
	_, err := sc.Drain(ctx, func(c chunk.Chunk) error {
		pm, err := shuffle.DecodePartitionMap(c)
		if err != nil {
			return nil // tolerate foreign records in the control bag
		}
		fn(pm)
		return nil
	})
	return err
}

// edgeStillActive reports whether partition-map refinements of the edge
// can still take effect: producers running, consumer not yet scheduled
// (the worker↔partition assignment is fixed from then on).
func (m *Master) edgeStillActive(edge *shuffleEdge) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range edge.producers {
		if m.tasks[p].finished {
			return false
		}
	}
	if edge.consumer != "" && m.tasks[edge.consumer].scheduled {
		return false
	}
	return true
}

// applySplit applies a SplitPartition action: re-hash one hot base
// partition into Fan sub-partitions. Splitting only redirects records not
// yet written, so it is always safe.
func (m *Master) applySplit(act ctrl.SplitPartition) (bool, error) {
	edge := m.edges[act.Edge]
	if edge == nil || !m.edgeStillActive(edge) {
		return false, nil
	}
	m.mu.Lock()
	pmap := edge.pmap
	m.mu.Unlock()
	if act.Partition < 0 || act.Partition >= pmap.Base || pmap.Splits[act.Partition] > 1 {
		return false, nil // stale proposal: partition already refined
	}
	fan := act.Fan
	if fan <= 1 {
		fan = 2
	}
	next := pmap.Clone()
	if next.Splits == nil {
		next.Splits = make(map[int]int)
	}
	next.Splits[act.Partition] = fan
	next.Version++
	if err := m.publishMap(edge, next); err != nil {
		return false, err
	}
	m.mu.Lock()
	m.splits++
	m.mu.Unlock()
	m.obs.splits.Inc()
	m.obs.emit(obs.EvPartitionSplit, act.Edge,
		fmt.Sprintf("partition=%d fan=%d leaf=%s version=%d", act.Partition, fan, act.Leaf, next.Version))
	return true, nil
}

// applyIsolate applies an IsolateKey action: divert one heavy-hitter key
// into a dedicated bag, spread over Fan bags when the edge permits.
func (m *Master) applyIsolate(act ctrl.IsolateKey) (bool, error) {
	edge := m.edges[act.Edge]
	if edge == nil || !m.edgeStillActive(edge) {
		return false, nil
	}
	m.mu.Lock()
	pmap := edge.pmap
	m.mu.Unlock()
	hash := shuffle.KeyHash(act.Key)
	if pmap.IsIsolated(hash) {
		return false, nil // stale proposal: key already isolated
	}
	fan := act.Fan
	if fan < 1 || !edge.spec.Spread {
		fan = 1
	}
	next := pmap.Clone()
	next.Isolated = append(next.Isolated, shuffle.Isolation{
		Hash: hash, Fan: fan, Key: append([]byte(nil), act.Key...),
	})
	next.Version++
	if err := m.publishMap(edge, next); err != nil {
		return false, err
	}
	m.mu.Lock()
	m.isolations++
	m.mu.Unlock()
	m.obs.isolations.Inc()
	m.obs.emit(obs.EvKeyIsolated, act.Edge,
		fmt.Sprintf("key=%x fan=%d version=%d", act.Key, fan, next.Version))
	return true, nil
}

// publishSeeds publishes the submission's warm-start seed maps
// (MasterConfig.Seeds) into their edges' control bags. It runs in the
// master's goroutine before the first scheduling pass, so no producer
// can route a record before the seed is visible — and it never blocks
// the cluster lock. Each edge first replays maps already published
// (a recovered successor, or a previous attempt), so seeding is
// idempotent: a seed at or below the known version is skipped.
// Best-effort throughout: a failed publish costs a cold start.
func (m *Master) publishSeeds() {
	for _, name := range edgeNames(m.edges) {
		seed := m.cfg.Seeds[name]
		if seed == nil {
			continue
		}
		edge := m.edges[name]
		_ = m.adoptPublishedMaps(edge)
		m.mu.Lock()
		known := edge.pmap.Version
		m.mu.Unlock()
		if seed.Version <= known {
			continue
		}
		sm := seed.Clone()
		sm.Bag = name
		_ = m.publishMap(edge, sm)
	}
}

// publishMap publishes a refined partition map and adopts it. Publish
// first, adopt second: producers must never observe a map the master (and
// a recovered successor) would not also know about.
func (m *Master) publishMap(edge *shuffleEdge, next *shuffle.PartitionMap) error {
	if err := m.store.Bag(shuffle.PMapBag(edge.name)).Insert(m.ctx, next.Encode()); err != nil {
		return err
	}
	m.mu.Lock()
	edge.pmap = next
	m.mu.Unlock()
	m.obs.emit(obs.EvMapRevision, edge.name,
		fmt.Sprintf("version=%d splits=%d isolated=%d", next.Version, len(next.Splits), len(next.Isolated)))
	return nil
}
