package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func nop(tc *TaskCtx) error { return nil }

func TestValidateHappyPath(t *testing.T) {
	app := NewApp("ok")
	app.SourceBag("src").Bag("mid").Bag("out")
	app.AddTask(TaskSpec{Name: "a", Inputs: []string{"src"}, Outputs: []string{"mid"}, Run: nop})
	app.AddTask(TaskSpec{Name: "b", Inputs: []string{"mid"}, Outputs: []string{"out"}, Run: nop, Merge: nop})
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := app.Producers("mid"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("producers(mid) = %v", got)
	}
	if got := app.Consumers("mid"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("consumers(mid) = %v", got)
	}
	if len(app.sourceBags()) != 1 {
		t.Fatalf("source bags %v", app.sourceBags())
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *App
		want  string
	}{
		{"no run", func() *App {
			a := NewApp("x").SourceBag("s").Bag("o")
			a.AddTask(TaskSpec{Name: "t", Inputs: []string{"s"}, Outputs: []string{"o"}})
			return a
		}, "no Run"},
		{"undeclared input", func() *App {
			a := NewApp("x").Bag("o")
			a.AddTask(TaskSpec{Name: "t", Inputs: []string{"ghost"}, Outputs: []string{"o"}, Run: nop})
			return a
		}, "undeclared"},
		{"undeclared output", func() *App {
			a := NewApp("x").SourceBag("s")
			a.AddTask(TaskSpec{Name: "t", Inputs: []string{"s"}, Outputs: []string{"ghost"}, Run: nop})
			return a
		}, "undeclared"},
		{"undeclared scan", func() *App {
			a := NewApp("x").SourceBag("s").Bag("o")
			a.AddTask(TaskSpec{Name: "t", Inputs: []string{"s"}, ScanInputs: []string{"ghost"}, Outputs: []string{"o"}, Run: nop})
			return a
		}, "scans undeclared"},
		{"write source", func() *App {
			a := NewApp("x").SourceBag("s").SourceBag("s2")
			a.AddTask(TaskSpec{Name: "t", Inputs: []string{"s"}, Outputs: []string{"s2"}, Run: nop})
			return a
		}, "source"},
		{"no inputs", func() *App {
			a := NewApp("x").Bag("o")
			a.AddTask(TaskSpec{Name: "t", Outputs: []string{"o"}, Run: nop})
			return a
		}, "no inputs"},
		{"merge arity", func() *App {
			a := NewApp("x").SourceBag("s").Bag("o1").Bag("o2")
			a.AddTask(TaskSpec{Name: "t", Inputs: []string{"s"}, Outputs: []string{"o1", "o2"}, Run: nop, Merge: nop})
			return a
		}, "merge"},
		{"double consumer", func() *App {
			a := NewApp("x").SourceBag("s").Bag("o1").Bag("o2")
			a.AddTask(TaskSpec{Name: "t1", Inputs: []string{"s"}, Outputs: []string{"o1"}, Run: nop})
			a.AddTask(TaskSpec{Name: "t2", Inputs: []string{"s"}, Outputs: []string{"o2"}, Run: nop})
			return a
		}, "consumed by 2"},
		{"cycle", func() *App {
			a := NewApp("x").SourceBag("s").Bag("m1").Bag("m2")
			a.AddTask(TaskSpec{Name: "t1", Inputs: []string{"s", "m2"}, Outputs: []string{"m1"}, Run: nop})
			a.AddTask(TaskSpec{Name: "t2", Inputs: []string{"m1"}, Outputs: []string{"m2"}, Run: nop})
			return a
		}, "cycle"},
		{"partitioned source", func() *App {
			a := NewApp("x").AddBag(BagSpec{Name: "s", Source: true, Partitions: 4}).Bag("o")
			a.AddTask(TaskSpec{Name: "t", Inputs: []string{"s"}, Outputs: []string{"o"}, Run: nop})
			return a
		}, "source bag"},
		{"spread without partitions", func() *App {
			a := NewApp("x").SourceBag("s").AddBag(BagSpec{Name: "o", Spread: true})
			a.AddTask(TaskSpec{Name: "t", Inputs: []string{"s"}, Outputs: []string{"o"}, Run: nop})
			return a
		}, "Spread without Partitions"},
		{"partitioned mixed inputs", func() *App {
			a := NewApp("x").SourceBag("s").SourceBag("s2").PartitionedBag("p", 4).Bag("o")
			a.AddTask(TaskSpec{Name: "prod", Inputs: []string{"s"}, Outputs: []string{"p"}, Run: nop})
			a.AddTask(TaskSpec{Name: "cons", Inputs: []string{"p", "s2"}, Outputs: []string{"o"}, Run: nop})
			return a
		}, "alongside other inputs"},
		{"partitioned pipelined consumer", func() *App {
			a := NewApp("x").SourceBag("s").PartitionedBag("p", 4).Bag("o")
			a.AddTask(TaskSpec{Name: "prod", Inputs: []string{"s"}, Outputs: []string{"p"}, Run: nop})
			a.AddTask(TaskSpec{Name: "cons", Inputs: []string{"p"}, Outputs: []string{"o"}, Pipelined: true, Run: nop})
			return a
		}, "pipelined"},
		{"partitioned scan", func() *App {
			a := NewApp("x").SourceBag("s").PartitionedBag("p", 4).Bag("o")
			a.AddTask(TaskSpec{Name: "prod", Inputs: []string{"s"}, Outputs: []string{"p"}, Run: nop})
			a.AddTask(TaskSpec{Name: "cons", Inputs: []string{"s"}, ScanInputs: []string{"p"}, Outputs: []string{"o"}, Run: nop})
			return a
		}, "scans partitioned"},
		{"merge targeting partitioned bag", func() *App {
			a := NewApp("x").SourceBag("s").PartitionedBag("p", 4)
			a.AddTask(TaskSpec{Name: "prod", Inputs: []string{"s"}, Outputs: []string{"p"}, Run: nop, Merge: nop})
			return a
		}, "merge procedure cannot target"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.build().Validate()
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestValidatePartitionedHappyPath(t *testing.T) {
	a := NewApp("x").SourceBag("s").
		AddBag(BagSpec{Name: "p", Partitions: 4, Spread: true}).Bag("o")
	a.AddTask(TaskSpec{Name: "prod", Inputs: []string{"s"}, Outputs: []string{"p"}, Run: nop})
	a.AddTask(TaskSpec{Name: "cons", Inputs: []string{"p"}, Outputs: []string{"o"}, Run: nop})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.partitioned("p") || a.partitioned("o") || a.partitioned("ghost") {
		t.Fatal("partitioned() misclassifies bags")
	}
}

func TestValidateScanSharingAllowed(t *testing.T) {
	// Two tasks may scan the same bag (only consumption is exclusive).
	a := NewApp("x").SourceBag("s").SourceBag("lookup").Bag("o1").Bag("o2")
	a.AddTask(TaskSpec{Name: "t1", Inputs: []string{"s"}, ScanInputs: []string{"lookup"}, Outputs: []string{"o1"}, Run: nop})
	a.AddTask(TaskSpec{Name: "t2", Inputs: []string{"o1"}, ScanInputs: []string{"lookup"}, Outputs: []string{"o2"}, Run: nop})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBlueprintRoundTripQuick(t *testing.T) {
	f := func(spec string, worker, epoch uint8, merge bool, inputs, outputs []string) bool {
		kind := KindTask
		if merge {
			kind = KindMerge
		}
		bp := &Blueprint{
			ID:      blueprintID(spec, int(worker), int(epoch)),
			Spec:    spec,
			Kind:    kind,
			Worker:  int(worker),
			Epoch:   int(epoch),
			Inputs:  inputs,
			Outputs: outputs,
		}
		got, err := DecodeBlueprint(bp.Encode())
		if err != nil {
			return false
		}
		if got.ID != bp.ID || got.Spec != bp.Spec || got.Kind != bp.Kind ||
			got.Worker != bp.Worker || got.Epoch != bp.Epoch ||
			len(got.Inputs) != len(bp.Inputs) || len(got.Outputs) != len(bp.Outputs) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlueprintDecodeBad(t *testing.T) {
	if _, err := DecodeBlueprint([]byte("not json")); err == nil {
		t.Fatal("bad blueprint must error")
	}
	if _, err := decodeEvent([]byte("{")); err == nil {
		t.Fatal("bad event must error")
	}
}

func TestEventRoundTrip(t *testing.T) {
	e := &event{TaskID: "t/w0@e1", Spec: "t", Node: "compute-3", Epoch: 1, Worker: 0, Merge: true, OK: true}
	got, err := decodeEvent(e.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *e {
		t.Fatalf("round trip: %+v != %+v", got, e)
	}
}

func TestPartialBagNaming(t *testing.T) {
	p0 := partialBag("out", 0, 0)
	p1 := partialBag("out", 1, 0)
	e1 := partialBag("out", 0, 1)
	if p0 == p1 || p0 == e1 || p1 == e1 {
		t.Fatal("partial bag names must be distinct per worker and epoch")
	}
}

func TestTaskStateReset(t *testing.T) {
	st := &taskState{spec: &TaskSpec{Name: "t", Outputs: []string{"o"}}}
	st.reset(0)
	st.workers = 3
	st.doneWorkers[0] = true
	st.finished = true
	st.reset(1)
	if st.epoch != 1 || st.workers != 0 || len(st.doneWorkers) != 0 || st.finished {
		t.Fatalf("reset incomplete: %+v", st)
	}
	st.workers = 2
	ps := st.partials()
	if len(ps) != 2 || ps[0] == ps[1] {
		t.Fatalf("partials: %v", ps)
	}
}

func TestClusterConfigDefaults(t *testing.T) {
	cfg := ClusterConfig{}
	cfg.fill()
	if cfg.StorageNodes == 0 || cfg.ComputeNodes == 0 || cfg.SlotsPerNode == 0 ||
		cfg.ChunkSize == 0 || cfg.BatchFactor == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	nc := NodeConfig{}
	nc.fill()
	if nc.PollInterval == 0 || nc.MonitorInterval == 0 || nc.OverloadThreshold == 0 {
		t.Fatalf("node defaults not filled: %+v", nc)
	}
	mc := MasterConfig{}
	mc.fill()
	if mc.CloneInterval == 0 || mc.StorageBandwidth == 0 || mc.SpeculativeAfter == 0 ||
		mc.SplitInterval == 0 || mc.SplitImbalance == 0 || mc.SplitMinRecords == 0 ||
		mc.SplitFan < 2 || mc.IsolateFraction == 0 {
		t.Fatalf("master defaults not filled: %+v", mc)
	}
	// PollInterval is deliberately NOT filled: the control loop is
	// event-driven, and the knob only pins the fallback timer when the
	// caller sets it explicitly.
	if mc.PollInterval != 0 {
		t.Fatalf("PollInterval should stay a compatibility knob, got %v", mc.PollInterval)
	}
}
