package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/storage"
	"repro/internal/transport"
)

func newTestStore(t *testing.T) *bag.Store {
	t.Helper()
	tr := transport.NewInProc()
	names := []string{"s0", "s1"}
	for _, n := range names {
		tr.Register(n, storage.NewNode(n))
	}
	st, err := bag.NewStore(bag.Config{Nodes: names, Client: tr, ChunkSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestWorkerRunsBlueprint exercises the worker runtime directly: a
// blueprint's Run consumes the input, writes the output, and the runtime
// flushes writers on success.
func TestWorkerRunsBlueprint(t *testing.T) {
	store := newTestStore(t)
	ctx := context.Background()

	in := store.Bag("in")
	w := chunk.NewTypedWriter[int64](chunk.Int64Codec{}, 1<<10, func(c chunk.Chunk) error {
		return in.Insert(ctx, c)
	})
	for i := int64(0); i < 100; i++ {
		if err := w.Write(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := store.Seal(ctx, "in"); err != nil {
		t.Fatal(err)
	}

	app := NewApp("w")
	app.SourceBag("in").Bag("out")
	app.AddTask(TaskSpec{
		Name: "double", Inputs: []string{"in"}, Outputs: []string{"out"},
		Run: func(tc *TaskCtx) error {
			for {
				c, err := tc.Remove(0)
				if err == bag.ErrEmpty {
					return nil
				}
				if err != nil {
					return err
				}
				r := chunk.NewReader(c)
				for r.Remaining() {
					rec, _ := r.Next()
					v, _, err := (chunk.Int64Codec{}).Decode(rec)
					if err != nil {
						return err
					}
					var buf []byte
					buf = (chunk.Int64Codec{}).Encode(buf, v*2)
					if err := tc.Writer(0).Append(buf); err != nil {
						return err
					}
				}
			}
		},
	})
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	bp := &Blueprint{
		ID: "double/w0@e0", Spec: "double",
		Inputs: []string{"in"}, Outputs: []string{"out"},
	}
	worker := runWorker(ctx, bp, store, app)
	select {
	case <-worker.done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not finish")
	}
	if worker.err != nil {
		t.Fatal(worker.err)
	}
	// Accounting: the worker consumed and produced bytes.
	if worker.tc.BytesIn() == 0 || worker.tc.BytesOut() == 0 {
		t.Fatalf("accounting: in=%d out=%d", worker.tc.BytesIn(), worker.tc.BytesOut())
	}
	if worker.tc.NumInputs() != 1 || worker.tc.NumOutputs() != 1 {
		t.Fatal("arity wrong")
	}
	if worker.tc.InputName(0) != "in" || worker.tc.OutputName(0) != "out" {
		t.Fatal("names wrong")
	}

	// Verify doubled contents.
	sc := store.Scanner("out")
	var sum int64
	for {
		c, err := sc.Next(ctx)
		if err == bag.ErrAgain || err == bag.ErrEmpty {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		r := chunk.NewReader(c)
		for r.Remaining() {
			rec, _ := r.Next()
			v, _, _ := (chunk.Int64Codec{}).Decode(rec)
			sum += v
		}
	}
	if want := int64(2 * 99 * 100 / 2); sum != want {
		t.Fatalf("sum %d, want %d", sum, want)
	}
}

// TestWorkerErrorPropagates: a failing TaskFunc surfaces its error.
func TestWorkerErrorPropagates(t *testing.T) {
	store := newTestStore(t)
	ctx := context.Background()
	store.Seal(ctx, "in")
	app := NewApp("w")
	app.SourceBag("in").Bag("out")
	boom := func(tc *TaskCtx) error { return context.DeadlineExceeded }
	app.AddTask(TaskSpec{Name: "bad", Inputs: []string{"in"}, Outputs: []string{"out"}, Run: boom})
	app.Validate()
	bp := &Blueprint{ID: "bad/w0@e0", Spec: "bad", Inputs: []string{"in"}, Outputs: []string{"out"}}
	w := runWorker(ctx, bp, store, app)
	<-w.done
	if w.err != context.DeadlineExceeded {
		t.Fatalf("err = %v", w.err)
	}
}

// TestWorkerUnknownSpec: a blueprint naming an unregistered task fails
// cleanly.
func TestWorkerUnknownSpec(t *testing.T) {
	store := newTestStore(t)
	app := NewApp("w")
	bp := &Blueprint{ID: "ghost/w0@e0", Spec: "ghost"}
	w := runWorker(context.Background(), bp, store, app)
	<-w.done
	if w.err == nil {
		t.Fatal("expected unknown-spec error")
	}
}

// TestWorkerKill: a killed worker stops quickly and reports killed.
func TestWorkerKill(t *testing.T) {
	store := newTestStore(t)
	ctx := context.Background()
	app := NewApp("w")
	app.SourceBag("in").Bag("out")
	app.AddTask(TaskSpec{
		Name: "spin", Inputs: []string{"in"}, Outputs: []string{"out"},
		Run: func(tc *TaskCtx) error {
			<-tc.Context().Done()
			return tc.Context().Err()
		},
	})
	app.Validate()
	bp := &Blueprint{ID: "spin/w0@e0", Spec: "spin", Inputs: []string{"in"}, Outputs: []string{"out"}}
	w := runWorker(ctx, bp, store, app)
	w.kill()
	select {
	case <-w.done:
	case <-time.After(10 * time.Second):
		t.Fatal("killed worker did not stop")
	}
	if !w.killed.Load() {
		t.Fatal("killed flag not set")
	}
}

// TestLoadSnapshotBusyFraction: the overload accounting distinguishes a
// busy worker from an idle one.
func TestLoadSnapshotBusyFraction(t *testing.T) {
	store := newTestStore(t)
	tc := newTaskCtx(context.Background(), &Blueprint{}, store, nil, nil, "")
	// Simulate compute time: control held by the "worker".
	time.Sleep(20 * time.Millisecond)
	busy := tc.loadSnapshot()
	if busy < 0.9 {
		t.Fatalf("busy fraction %.2f after pure compute", busy)
	}
	// Simulate waiting: mark a wait interval.
	start := tc.markBusyEnd()
	time.Sleep(20 * time.Millisecond)
	tc.markWaitEnd(start)
	busy = tc.loadSnapshot()
	if busy > 0.2 {
		t.Fatalf("busy fraction %.2f after pure waiting", busy)
	}
}
