package core

import (
	"time"
)

// failureDetectPass declares compute nodes dead after FailTimeout of
// heartbeat silence and recovers their tasks.
func (m *Master) failureDetectPass() {
	if m.cfg.FailTimeout <= 0 {
		return
	}
	now := time.Now()
	m.mu.Lock()
	var deadNodes []string
	for name, ns := range m.nodes {
		if !ns.dead && now.Sub(ns.lastBeat) > m.cfg.FailTimeout {
			ns.dead = true
			deadNodes = append(deadNodes, name)
		}
	}
	m.mu.Unlock()
	for _, node := range deadNodes {
		m.enqueueRecovery(node)
	}
}

// drainRecoveries performs pending node recoveries, returning how many
// ran. It runs on the master loop goroutine, so recovery's task-state
// resets, kills, and storage scrubbing are strictly ordered before the
// next schedulePass — a restarted task can never start reading an input
// bag before its rewind lands.
func (m *Master) drainRecoveries() int {
	n := 0
	for {
		select {
		case node := <-m.recoverCh:
			m.recoverNode(node)
			n++
		default:
			return n
		}
	}
}

func (m *Master) enqueueRecovery(node string) {
	select {
	case m.recoverCh <- node:
		m.hub.Nudge() // wake the loop: a recovery is waiting
	default:
		// Queue full: re-mark the node not-dead so failure detection
		// retries next tick. In practice 64 pending recoveries means the
		// cluster is gone anyway.
		m.mu.Lock()
		if ns := m.nodes[node]; ns != nil {
			ns.dead = false
		}
		m.mu.Unlock()
	}
}

// NotifyNodeFailure lets the embedding cluster report a known-dead compute
// node immediately instead of waiting out the heartbeat timeout.
func (m *Master) NotifyNodeFailure(node string) {
	m.mu.Lock()
	ns := m.nodes[node]
	if ns == nil {
		ns = &nodeState{}
		m.nodes[node] = ns
	}
	alreadyDead := ns.dead
	ns.dead = true
	m.mu.Unlock()
	if !alreadyDead {
		m.enqueueRecovery(node)
	}
}

// recoverNode restarts every task that had a worker on the failed node
// (§4.4): terminate all running clones of those tasks, discard their
// output bags, rewind their input bags, and reschedule them at a new
// epoch. Tasks that shared an output bag with a restarted task are also
// restarted (their contribution to the discarded bag is lost), which the
// worklist below handles transitively.
func (m *Master) recoverNode(node string) {
	m.obs.recoveries.Inc()
	m.mu.Lock()
	m.recoveries++
	// Find directly affected tasks: unfinished tasks with a worker
	// started on the dead node.
	worklist := make([]string, 0, 4)
	inList := make(map[string]bool)
	for name, st := range m.tasks {
		if st.finished || !st.scheduled {
			continue
		}
		for _, n := range st.running {
			if n == node {
				if !inList[name] {
					worklist = append(worklist, name)
					inList[name] = true
				}
				break
			}
		}
	}

	type restartPlan struct {
		spec    string
		epoch   int // epoch being aborted
		discard []string
		rewind  []string
	}
	var plans []restartPlan
	for len(worklist) > 0 {
		name := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		st := m.tasks[name]
		plan := restartPlan{spec: name, epoch: st.epoch}
		// Outputs to discard: partial bags (if merging) plus declared
		// outputs (a sole-worker rename may already have moved data
		// there, and concat-task clones write it directly).
		if st.spec.requiresMerge() {
			plan.discard = append(plan.discard, st.partials()...)
		}
		plan.discard = append(plan.discard, st.spec.Outputs...)
		plan.rewind = append(plan.rewind, st.spec.Inputs...)
		plans = append(plans, plan)

		// Restarting this task discards its declared outputs; other
		// producers of those bags lose their contribution and must be
		// restarted too, even if they already finished.
		for _, out := range st.spec.Outputs {
			for _, p := range m.app.Producers(out) {
				if p != name && !inList[p] && m.tasks[p].scheduled {
					worklist = append(worklist, p)
					inList[p] = true
				}
			}
		}
		// Reset master state for the task at a fresh epoch.
		if st.finished {
			m.finished--
		}
		for _, out := range st.spec.Outputs {
			delete(m.sealed, out)
		}
		st.reset(st.epoch + 1)
	}
	m.mu.Unlock()

	// Execute the plans outside the lock: kill clones cluster-wide, then
	// scrub storage. The tasks will be rescheduled by the next
	// schedulePass once their (still sealed) inputs qualify.
	for _, plan := range plans {
		m.control.KillTask(plan.spec, plan.epoch)
	}
	for _, plan := range plans {
		for _, b := range plan.discard {
			for _, phys := range m.physicalBags(b) {
				if err := m.store.Discard(m.ctx, phys); err != nil {
					m.failRecovery(err)
					return
				}
			}
			// Discarding a shuffle edge's data also discards its sketch
			// state: the restarted producers re-push from zero, and stale
			// cumulative stats from the aborted epoch must not
			// double-count the records they will re-write.
			if m.edges[b] != nil {
				if err := m.store.DeleteSketch(m.ctx, b); err != nil {
					m.failRecovery(err)
					return
				}
			}
		}
		for _, b := range plan.rewind {
			for _, phys := range m.physicalBags(b) {
				if err := m.store.Rewind(m.ctx, phys); err != nil {
					m.failRecovery(err)
					return
				}
			}
		}
	}
}

// failRecovery records a recovery error as a job failure — unless the
// master itself was stopped mid-recovery (crash simulation, shutdown),
// in which case the interrupted scrub is not a job failure: the
// successor master re-derives the dead nodes from carried-over liveness
// state and re-runs the recovery from the work bags.
func (m *Master) failRecovery(err error) {
	if m.ctx.Err() != nil && m.stopped.Load() {
		return
	}
	m.fail(err)
}
