package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/bag"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/shuffle"
)

// JobConfig tunes one job submission to a multi-job cluster.
type JobConfig struct {
	// Name uniquely identifies the job within the cluster. Empty
	// defaults to the application name. Two live jobs cannot share a
	// name.
	Name string
	// Prefix namespaces the job's bags: every declared bag name (and
	// every name derived from one — physical partitions, control bags,
	// work bags, clone partials) is stored as "<prefix>/<name>", so
	// concurrent jobs built from the same application graph cannot
	// collide. Empty defaults to Name. Load source bags and read outputs
	// through JobHandle.Bag, which maps declared names to physical ones.
	Prefix string
	// Raw disables namespacing: bags keep their declared names.
	// Cluster.Run submits this way so single-job applications keep the
	// paper's flat naming. Submission still validates that the raw names
	// cannot collide with any live job's.
	Raw bool
	// Weight is the job's fair-share weight (default
	// sched.Config.DefaultWeight). A weight-2 job is entitled to twice
	// the worker slots of a weight-1 job under contention.
	Weight int
	// Retain keeps the job's work and control bags after completion
	// (Cluster.Run sets it; tests replay them). Without it the scheduler
	// garbage collects them when the job finishes; data bags always
	// remain until JobHandle.Discard.
	Retain bool
	// Master overrides the cluster-wide MasterConfig for this job (nil
	// uses the cluster default). This is how co-running jobs get
	// different mitigation policies.
	Master *MasterConfig
	// TraceID is the causal trace ID minted by the submitter (for remote
	// submissions, at `hurricane-run -submit` before the request crosses
	// the wire). When set, every trace event and the execution profile of
	// this job carry it, and the cluster's debug endpoints resolve
	// ?trace=<id> back to the job — which is how a submitter that never
	// learns the server-side job name fetches the job's timeline and
	// EXPLAIN ANALYZE across the process boundary.
	TraceID string
	// Seeds are warm-start partition maps for the job's partitioned
	// edges, keyed by declared bag name (the query planner's compile-time
	// skew memory). They are published into the job's (namespaced) edge
	// control bags after admission but before the job's master starts, so
	// producers can never observe an unseeded edge — and a rejected
	// submission never writes into a namespace it was not granted.
	// Publishing is best-effort: a failed seed costs a cold start, not
	// the job.
	Seeds map[string]*shuffle.PartitionMap
}

// JobStats reports a job's scheduling state and its master's activity.
type JobStats struct {
	State   string // queued | running | done | failed
	Weight  int
	Share   int // current fair-share slot allotment (0 once finished)
	Running int // worker slots claimed cluster-wide right now
	Master  MasterStats
}

// JobHandle is the caller's grip on one submitted job.
type JobHandle struct {
	c      *Cluster
	id     string
	prefix string // "" for raw jobs
	app    *App   // namespaced application graph
	cfg    JobConfig
	subCtx context.Context // submission context; used if admitted later

	mu      sync.Mutex
	master  *Master
	swap    chan struct{} // closed when master is replaced (recovery)
	state   sched.State
	err     error
	done    chan struct{}
	explain func(*obs.Profile) string
}

// ID returns the job's unique name.
func (h *JobHandle) ID() string { return h.id }

// Bag maps a declared bag name to the physical (namespaced) bag name:
// load source bags into, and collect outputs from, the returned name.
func (h *JobHandle) Bag(name string) string {
	if h.prefix == "" {
		return name
	}
	return h.prefix + "/" + name
}

// State reports the job's lifecycle state.
func (h *JobHandle) State() sched.State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Done returns a channel closed when the job completes (or fails).
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Err returns the job error, if any. Valid after Done is closed.
func (h *JobHandle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Wait blocks until the job completes and returns its error.
func (h *JobHandle) Wait(ctx context.Context) error {
	select {
	case <-h.done:
		return h.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats returns the job's scheduling and master counters.
func (h *JobHandle) Stats() JobStats {
	h.mu.Lock()
	m := h.master
	state := h.state
	h.mu.Unlock()
	js := JobStats{
		State:   state.String(),
		Weight:  h.c.reg.Weight(h.id),
		Share:   h.c.leases.Share(h.id),
		Running: h.c.leases.Running(h.id),
	}
	if m != nil {
		js.Master = m.Stats()
	}
	return js
}

// Master returns the job's current application master (nil while the job
// is queued). After completion it still holds the final masters' state —
// the streaming subsystem reads EdgeMemory from it to warm-start the next
// window.
func (h *JobHandle) Master() *Master { return h.currentMaster() }

// Metrics snapshots the cluster registry's view of this job: every
// series labeled job=<id> (with the label stripped from the returned
// names) plus the unlabeled cluster-wide series. Histograms flatten to
// _count/_sum/_p50/_p95/_p99. Nil when observability is disabled.
func (h *JobHandle) Metrics() map[string]float64 {
	return h.c.obs.Registry().SnapshotFor("job", h.id)
}

// Trace returns the job's slice of the cluster-wide event trace, oldest
// first. Nil-safe: an unobserved cluster returns nil.
func (h *JobHandle) Trace() []obs.Event {
	return h.c.obs.Tracer().Events(h.id, "")
}

// Profile returns the job's measured execution profile: per-stage phase
// spans, the critical path through the task DAG, and per-edge skew
// attribution. Nil while the job is still queued; partial while it runs;
// complete once Done. Spans are collected unless
// ClusterConfig.DisableSpans was set, in which case the profile has no
// stages.
func (h *JobHandle) Profile() *obs.Profile {
	m := h.currentMaster()
	if m == nil {
		return nil
	}
	return m.Profile()
}

// SetExplain registers a renderer that turns the job's measured profile
// into an EXPLAIN ANALYZE report. Planner-compiled jobs register their
// physical plan's renderer at submission; hand-wired jobs leave it unset
// and Explain falls back to the profile's generic rendering.
func (h *JobHandle) SetExplain(f func(*obs.Profile) string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.explain = f
}

// Explain renders the job's EXPLAIN ANALYZE: the registered renderer
// applied to the measured profile, or the profile's generic rendering
// when none was registered. Empty while the job is still queued.
func (h *JobHandle) Explain() string {
	p := h.Profile()
	if p == nil {
		return ""
	}
	h.mu.Lock()
	f := h.explain
	h.mu.Unlock()
	if f != nil {
		return f(p)
	}
	return p.String()
}

// currentMaster returns the job's master (nil while queued).
func (h *JobHandle) currentMaster() *Master {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.master
}

// finish records completion exactly once.
func (h *JobHandle) finish(err error) {
	h.mu.Lock()
	if h.state == sched.StateDone || h.state == sched.StateFailed {
		h.mu.Unlock()
		return
	}
	h.err = err
	if err != nil {
		h.state = sched.StateFailed
	} else {
		h.state = sched.StateDone
	}
	h.mu.Unlock()
	close(h.done)
}

// Discard garbage collects every bag the finished job owned — outputs
// included — and releases its name claims, so a later submission may
// reuse the names. It fails while the job is still queued or running.
func (h *JobHandle) Discard(ctx context.Context) error {
	h.mu.Lock()
	state := h.state
	h.mu.Unlock()
	if state == sched.StateQueued || state == sched.StateRunning {
		return fmt.Errorf("core: job %q is %s; discard after completion", h.id, state)
	}
	// After Reset the job's name (and namespace) may be owned by a live
	// successor — the streaming subsystem's window retry. A stale handle's
	// Discard would wipe that successor's bags mid-run and release its
	// claims; only the currently registered handle may destroy the name.
	h.c.mu.Lock()
	cur := h.c.jobs[h.id]
	h.c.mu.Unlock()
	if cur != h {
		return fmt.Errorf("core: job %q handle is stale (name released or reclaimed); discard through the live handle", h.id)
	}
	store := h.c.store
	if h.prefix != "" {
		// Everything the job ever touched lives under its namespace —
		// including runtime-derived names no caller could enumerate.
		if err := store.DeletePrefix(ctx, h.prefix+"/"); err != nil {
			return err
		}
	} else {
		for _, b := range h.app.Bags() {
			if h.app.BagSpecFor(b).Source {
				if err := store.Delete(ctx, b); err != nil {
					return err
				}
			}
		}
		if err := scrubDerivedBags(ctx, store, h.app); err != nil {
			return err
		}
	}
	h.c.reg.Release(h.id)
	h.c.mu.Lock()
	delete(h.c.jobs, h.id)
	if h.c.primary == h {
		h.c.primary = nil
	}
	h.c.mu.Unlock()
	return nil
}

// Reset prepares a completed — typically failed — namespaced job for
// resubmission under the same name: every bag the job derived is deleted
// (outputs, partitioned edges with their runtime split/isolation bags and
// sketches, merge partials, work and control bags), its source bags are
// rewound so their consumed chunks replay from the start, and the job's
// registration and name claims are released. The streaming subsystem's
// window retry is the intended caller: rewinding instead of re-ingesting
// preserves exactly-once per window without a second copy of the input.
// The handle is dead afterwards; resubmit the application with SubmitJob.
// Raw jobs cannot be reset (their sources may be shared), and neither can
// jobs still queued or running.
func (h *JobHandle) Reset(ctx context.Context) error {
	h.mu.Lock()
	state := h.state
	h.mu.Unlock()
	if state == sched.StateQueued || state == sched.StateRunning {
		return fmt.Errorf("core: job %q is %s; reset after completion", h.id, state)
	}
	if h.prefix == "" {
		return fmt.Errorf("core: job %q is raw (no namespace); reset is only safe for namespaced jobs", h.id)
	}
	// Same staleness guard as Discard: after a previous Reset released
	// the name, a successor may own it — rewinding its in-use sources and
	// scrubbing its derived bags mid-run would corrupt the live job.
	h.c.mu.Lock()
	cur := h.c.jobs[h.id]
	h.c.mu.Unlock()
	if cur != h {
		return fmt.Errorf("core: job %q handle is stale (name released or reclaimed); reset through the live handle", h.id)
	}
	store := h.c.store
	for _, b := range h.app.Bags() {
		if h.app.BagSpecFor(b).Source {
			if err := store.Rewind(ctx, b); err != nil {
				return err
			}
		}
	}
	if err := scrubDerivedBags(ctx, store, h.app); err != nil {
		return err
	}
	h.c.reg.Release(h.id)
	h.c.mu.Lock()
	if h.c.jobs[h.id] == h {
		delete(h.c.jobs, h.id)
	}
	if h.c.primary == h {
		h.c.primary = nil
	}
	h.c.mu.Unlock()
	return nil
}

// scrubDerivedBags deletes every bag a job derives from its declared
// graph: non-source data bags, a partitioned edge's runtime bags
// (partition splits, isolated heavy-hitter bags, the pmap control bag)
// and its storage-side sketch state — which plain Delete does not touch
// and which would otherwise seed a name-reusing successor with this
// job's cumulative producer statistics — plus merge partials and the
// work bags. Shared by Discard (which also deletes the source bags) and
// Reset (which rewinds them instead), so a new kind of runtime-derived
// bag only has to be added here.
func scrubDerivedBags(ctx context.Context, store *bag.Store, app *App) error {
	for _, b := range app.Bags() {
		spec := app.BagSpecFor(b)
		if spec.Source {
			continue
		}
		if err := store.Delete(ctx, b); err != nil {
			return err
		}
		if spec.Partitions > 0 {
			if err := store.DeletePrefix(ctx, b+".p"); err != nil {
				return err
			}
			if err := store.DeletePrefix(ctx, b+".h"); err != nil {
				return err
			}
			if err := store.Delete(ctx, shuffle.PMapBag(b)); err != nil {
				return err
			}
			if err := store.DeleteSketch(ctx, b); err != nil {
				return err
			}
		}
	}
	for _, t := range app.Tasks() {
		spec := app.Task(t)
		if spec.requiresMerge() {
			if err := store.DeletePrefix(ctx, spec.Outputs[0]+"~p"); err != nil {
				return err
			}
		}
	}
	wb := newWorkBags(store, app.Name())
	for _, n := range []string{wb.readyName(), wb.runningName(), wb.doneName()} {
		if err := store.Delete(ctx, n); err != nil {
			return err
		}
	}
	return nil
}

// ---- namespacing ----

// namespacedApp returns a copy of app with every bag name (and the
// application name, which keys the work bags) moved under
// "<prefix>/". Task names are left alone: blueprints live in the job's
// own work bags, so they cannot collide across jobs. Task functions are
// shared by reference — they address bags by index through the TaskCtx,
// so they observe the namespaced names transparently.
func namespacedApp(app *App, prefix string) *App {
	ns := func(n string) string { return prefix + "/" + n }
	out := NewApp(ns(app.name))
	for name, b := range app.bags {
		s := *b
		s.Name = ns(name)
		out.bags[s.Name] = &s
	}
	nsAll := func(names []string) []string {
		if names == nil {
			return nil
		}
		mapped := make([]string, len(names))
		for i, n := range names {
			mapped[i] = ns(n)
		}
		return mapped
	}
	for name, t := range app.tasks {
		s := *t
		s.Inputs = nsAll(t.Inputs)
		s.Outputs = nsAll(t.Outputs)
		s.ScanInputs = nsAll(t.ScanInputs)
		out.tasks[name] = &s
	}
	return out
}

// appClaims enumerates the physical bag names a job may touch: declared
// bags and work bags exactly, plus prefixes covering runtime-derived
// names (physical partitions "<bag>.p…" and their splits, isolated
// heavy-hitter bags "<bag>.h…", clone partial bags "<out>~p…"). Raw
// jobs register these with the registry, which rejects a submission
// whose claims overlap a live job's; namespaced jobs register their
// whole "<prefix>/" subtree instead (Discard sweeps exactly that), with
// the detailed claims still used for within-job validation.
func appClaims(app *App) sched.NameClaims {
	var c sched.NameClaims
	for _, b := range app.Bags() {
		c.Exact = append(c.Exact, b)
		if app.BagSpecFor(b).Partitions > 0 {
			c.Exact = append(c.Exact, shuffle.PMapBag(b))
			c.Derived = append(c.Derived, b+".p", b+".h")
		}
	}
	for _, t := range app.Tasks() {
		spec := app.Task(t)
		if spec.requiresMerge() {
			c.Derived = append(c.Derived, spec.Outputs[0]+"~p")
		}
	}
	wb := newWorkBags(nil, app.Name())
	c.Exact = append(c.Exact, wb.readyName(), wb.runningName(), wb.doneName())
	return c
}

// ---- submission and supervision ----

// SubmitJob admits a job into the cluster: it validates the application
// graph and its (namespaced) bag names against every live job, then
// either starts it immediately or queues it behind the concurrency
// limit. Source bags must be loaded and sealed — under the names
// JobHandle.Bag reports — before the job's tasks consume them; loading
// before SubmitJob is the safe order.
func (c *Cluster) SubmitJob(ctx context.Context, app *App, cfg JobConfig) (*JobHandle, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = app.Name()
	}
	prefix := ""
	if !cfg.Raw {
		prefix = cfg.Prefix
		if prefix == "" {
			prefix = cfg.Name
		}
	}
	nsApp := app
	if prefix != "" {
		nsApp = namespacedApp(app, prefix)
		if err := nsApp.Validate(); err != nil {
			return nil, fmt.Errorf("core: namespacing job %q: %w", cfg.Name, err)
		}
	}
	// Within-job validation always runs on the detailed claims: a bag
	// that shadows a sibling's derived names (declaring both partitioned
	// "x" and plain "x.p0") is a latent cross-talk bug namespacing can't
	// fix.
	claims := appClaims(nsApp)
	if msg, bad := claims.SelfConflict(); bad {
		return nil, fmt.Errorf("core: job %q: %s", cfg.Name, msg)
	}
	// Cross-job claims: a namespaced job owns its entire "<prefix>/"
	// subtree — Discard sweeps exactly that prefix, so the claim must
	// cover it all (including a raw job's bag that merely starts with
	// the prefix, which the detailed claims would miss).
	if prefix != "" {
		claims = sched.NameClaims{Prefix: []string{prefix + "/"}}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// Namespaces must not nest: JobHandle.Discard deletes the whole
	// "<prefix>/" subtree, which must never reach into a sibling job.
	// (The registry's prefix-claim overlap check would also catch this;
	// the explicit check names both jobs in the error.)
	for id, other := range c.jobs {
		if prefix != "" && other.prefix != "" &&
			(strings.HasPrefix(prefix, other.prefix+"/") || strings.HasPrefix(other.prefix, prefix+"/")) {
			return nil, fmt.Errorf("core: job %q namespace %q nests inside job %q namespace %q",
				cfg.Name, prefix, id, other.prefix)
		}
	}
	// Register the causal trace ID before admission: the scheduler's own
	// events (LeaseGrant at admission) must already carry it.
	if cfg.TraceID != "" {
		c.obs.Tracer().SetJobTrace(cfg.Name, cfg.TraceID)
	}
	start, err := c.reg.Submit(cfg.Name, claims, cfg.Weight)
	if err != nil {
		return nil, err
	}
	h := &JobHandle{
		c:      c,
		id:     cfg.Name,
		prefix: prefix,
		app:    nsApp,
		cfg:    cfg,
		subCtx: ctx,
		swap:   make(chan struct{}),
		state:  sched.StateQueued,
		done:   make(chan struct{}),
	}
	c.jobs[h.id] = h
	if start {
		c.startJobLocked(ctx, h)
	}
	return h, nil
}

// startJobLocked moves an admitted job into execution: build its master
// behind a job-scoped control adapter (handing it the job's seed
// partition maps, which the master publishes from its own goroutine
// before its first scheduling pass — a blocking storage write under
// c.mu could wedge the whole scheduler), bind it to every compute node,
// and begin supervision. Caller holds c.mu.
func (c *Cluster) startJobLocked(ctx context.Context, h *JobHandle) {
	c.ensurePoolLocked()
	mcfg := c.cfg.Master
	if h.cfg.Master != nil {
		mcfg = *h.cfg.Master
	}
	mcfg.Job = h.id
	mcfg.Obs = c.obs
	mcfg.TraceID = h.cfg.TraceID
	if len(h.cfg.Seeds) > 0 {
		mcfg.Seeds = make(map[string]*shuffle.PartitionMap, len(h.cfg.Seeds))
		for name, seed := range h.cfg.Seeds {
			mcfg.Seeds[h.Bag(name)] = seed
		}
	}
	m := NewMaster(h.app, c.store, &jobControl{c: c, job: h.id}, mcfg)
	c.leases.Add(h.id, c.reg.Weight(h.id))
	h.mu.Lock()
	h.master = m
	h.state = sched.StateRunning
	h.mu.Unlock()
	for _, n := range c.computes {
		n.Attach(h.id, h.app, m.WorkBags(), m)
	}
	m.Start(ctx)
	go c.supervise(h)
}

// supervise waits for the job's (current) master to complete the job,
// surviving master crash/recovery swaps, then finalizes it.
func (c *Cluster) supervise(h *JobHandle) {
	for {
		h.mu.Lock()
		m := h.master
		swap := h.swap
		h.mu.Unlock()
		select {
		case <-m.Done():
			c.finalizeJob(h, m.Err())
			return
		case <-swap:
			// Master replaced (recovery); watch the successor.
		case <-c.poolCtx.Done():
			return
		}
	}
}

// finalizeJob releases a completed job's slots and name bindings, admits
// queued jobs the freed concurrency slot allows, and garbage collects
// the job's work bags unless retained.
func (c *Cluster) finalizeJob(h *JobHandle, jobErr error) {
	c.mu.Lock()
	nodes := make([]*ComputeNode, 0, len(c.computes))
	for _, n := range c.computes {
		n.Detach(h.id)
		nodes = append(nodes, n)
	}
	c.leases.Remove(h.id)
	admit := c.reg.Finish(h.id, jobErr != nil)
	var toStart []*JobHandle
	for _, id := range admit {
		if nh := c.jobs[id]; nh != nil {
			toStart = append(toStart, nh)
		}
	}
	c.mu.Unlock()
	if jobErr != nil {
		// A failed job's workers will never be rescheduled; reap them so
		// their slots return to the pool.
		for _, n := range nodes {
			n.KillJob(h.id)
		}
	}
	h.finish(jobErr)
	if !h.cfg.Retain {
		c.gcJob(h)
	}
	c.mu.Lock()
	for _, nh := range toStart {
		c.startJobLocked(nh.subCtx, nh)
	}
	c.mu.Unlock()
}

// gcJob garbage collects a finished job's scheduling state: the work
// bags and partition-map control bags. Data bags stay until
// JobHandle.Discard. Best-effort: the job is already complete, and a
// down storage node must not fail it retroactively.
func (c *Cluster) gcJob(h *JobHandle) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wb := newWorkBags(c.store, h.app.Name())
	for _, n := range []string{wb.readyName(), wb.runningName(), wb.doneName()} {
		_ = c.store.Delete(ctx, n)
	}
	for _, b := range h.app.Bags() {
		if h.app.BagSpecFor(b).Partitions > 0 {
			_ = c.store.Delete(ctx, shuffle.PMapBag(b))
		}
	}
}

// schedPass is one scheduling tick: sample every running job's unclaimed
// ready blueprints into the lease allocator's demand signal, then run
// the preemption plan — asking over-share jobs' masters to yield clone
// workers toward starved jobs' deficits.
func (c *Cluster) schedPass() {
	type item struct {
		h     *JobHandle
		m     *Master
		ready string
	}
	c.mu.Lock()
	items := make([]item, 0, len(c.jobs))
	for _, h := range c.jobs {
		h.mu.Lock()
		if h.state == sched.StateRunning && h.master != nil {
			items = append(items, item{h, h.master, h.master.WorkBags().readyName()})
		}
		h.mu.Unlock()
	}
	c.mu.Unlock()
	if len(items) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(c.poolCtx, 5*time.Second)
	defer cancel()
	for _, it := range items {
		pending := 0
		if st, err := c.store.Sample(ctx, it.ready); err == nil {
			pending = int(st.RemainingChunks())
		}
		c.leases.SetDemand(it.h.id, pending)
	}
	if c.leases.FairShare() {
		plan := c.leases.Plan()
		for _, it := range items {
			if n := plan[it.h.id]; n > 0 {
				c.obs.Counter("hurricane_sched_preemptions_total", "job", it.h.id).Inc()
				c.obs.Emit(obs.EvLeasePreempt, it.h.id, it.h.id, fmt.Sprintf("yield=%d", n))
				it.m.YieldClones(n)
			}
		}
	}
}

func (c *Cluster) schedLoop() {
	t := time.NewTicker(c.cfg.Sched.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.poolCtx.Done():
			return
		case <-t.C:
			c.schedPass()
		}
	}
}

// ---- per-job control adapter ----

// jobControl is the ClusterControl a job's master sees: kills are scoped
// to the job's workers, and the mitigation budget (LeaseSlots) is capped
// by the job's fair-share lease so its clones cannot starve neighbors.
type jobControl struct {
	c   *Cluster
	job string
}

// KillTask implements ClusterControl, scoped to the owning job.
func (jc *jobControl) KillTask(spec string, epoch int) {
	jc.c.killTask(jc.job, spec, epoch)
}

// FreeSlots implements ClusterControl: physical idle slots, shared by
// all jobs.
func (jc *jobControl) FreeSlots() int { return jc.c.FreeSlots() }

// TotalSlots implements ClusterControl.
func (jc *jobControl) TotalSlots() int { return jc.c.TotalSlots() }

// YieldWorker implements ClusterControl, scoped to the owning job.
func (jc *jobControl) YieldWorker(node, bpID string) bool {
	return jc.c.yieldWorker(jc.job, node, bpID)
}

// LeaseSlots implements LeaseInfo: the job's clone budget this round.
func (jc *jobControl) LeaseSlots() int {
	return jc.c.leases.CloneBudget(jc.job, jc.c.FreeSlots())
}
