package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/obs"
)

// TaskCtx is the execution context handed to a TaskFunc. It exposes the
// worker's input and output bags and transparently accounts busy/wait time
// for the overload detector.
type TaskCtx struct {
	ctx   context.Context
	bp    *Blueprint
	store *bag.Store
	app   *App
	obs   *obs.Observer // nil-safe; instrumented helpers no-op when unset
	job   string        // owning job ID, labels per-job series

	ins   []*bag.Bag
	outs  []*bag.Bag
	scans []*bag.Scanner

	writers   []*chunk.Writer
	inserters []*bag.Inserter
	onFinish  []func() error

	// load accounting (nanoseconds)
	busyNS atomic.Int64
	waitNS atomic.Int64
	last   atomic.Int64 // wall-clock ns when the worker last got control

	bytesIn  atomic.Int64
	bytesOut atomic.Int64
	chunksIn atomic.Int64

	// yieldReq asks the worker to stop consuming at its next chunk
	// boundary and finish normally (fair-share preemption of clones).
	yieldReq atomic.Bool
	// yieldApplied records that the input pipelines have been quiesced
	// (worker goroutine only).
	yieldApplied bool
}

func newTaskCtx(ctx context.Context, bp *Blueprint, store *bag.Store, app *App, o *obs.Observer, job string) *TaskCtx {
	tc := &TaskCtx{ctx: ctx, bp: bp, store: store, app: app, obs: o, job: job}
	for _, in := range bp.Inputs {
		tc.ins = append(tc.ins, store.Bag(in))
	}
	for _, out := range bp.Outputs {
		tc.outs = append(tc.outs, store.Bag(out))
	}
	for _, sc := range bp.ScanInputs {
		tc.scans = append(tc.scans, store.Scanner(sc))
	}
	tc.writers = make([]*chunk.Writer, len(tc.outs))
	tc.inserters = make([]*bag.Inserter, len(tc.outs))
	tc.last.Store(time.Now().UnixNano())
	return tc
}

// Context returns the worker's cancellation context. TaskFuncs performing
// long computations should check it periodically.
func (tc *TaskCtx) Context() context.Context { return tc.ctx }

// Blueprint returns the worker's blueprint (ID, worker index, epoch).
func (tc *TaskCtx) Blueprint() *Blueprint { return tc.bp }

// NumInputs returns the number of input bags.
func (tc *TaskCtx) NumInputs() int { return len(tc.ins) }

// NumOutputs returns the number of output bags.
func (tc *TaskCtx) NumOutputs() int { return len(tc.outs) }

// markBusyStart transitions accounting from "worker computing" to "worker
// waiting on storage" and returns the wait-start timestamp.
func (tc *TaskCtx) markBusyEnd() int64 {
	now := time.Now().UnixNano()
	tc.busyNS.Add(now - tc.last.Load())
	return now
}

func (tc *TaskCtx) markWaitEnd(start int64) {
	now := time.Now().UnixNano()
	tc.waitNS.Add(now - start)
	tc.last.Store(now)
}

// requestYield asks the worker to wind down consumption and finish
// normally: its input pipelines are quiesced (no further chunks are
// removed from storage, but chunks the prefetch pipeline already
// consumed keep flowing — dropping them would lose data), the task
// function then observes an ordinary end-of-input, flushes its outputs,
// and completes. The chunks the worker never took are consumed by the
// task's other workers through ordinary late binding. This is how the
// multi-job scheduler preempts a clone without losing or redoing work;
// it is only ever invoked on clones whose input bags another live worker
// of the same task drains.
func (tc *TaskCtx) requestYield() { tc.yieldReq.Store(true) }

// Remove pulls the next chunk from input i. It returns bag.ErrEmpty when
// the input is exhausted, which is the worker's termination signal.
func (tc *TaskCtx) Remove(i int) (chunk.Chunk, error) {
	if tc.yieldReq.Load() && !tc.yieldApplied {
		tc.yieldApplied = true
		for _, in := range tc.ins {
			in.Quiesce()
		}
	}
	start := tc.markBusyEnd()
	c, err := tc.ins[i].Remove(tc.ctx)
	tc.markWaitEnd(start)
	if err == nil {
		tc.bytesIn.Add(int64(len(c)))
		tc.chunksIn.Add(1)
	}
	return c, err
}

// Scan reads the next chunk of scan input i without consuming it. Unlike
// Remove, every worker of the task sees the complete bag. It returns
// bag.ErrEmpty at the end of the (sealed) bag.
func (tc *TaskCtx) Scan(i int) (chunk.Chunk, error) {
	start := tc.markBusyEnd()
	defer tc.markWaitEnd(start)
	for {
		c, err := tc.scans[i].Next(tc.ctx)
		if err == bag.ErrAgain {
			// A scheduled task's scan inputs are sealed, but seal
			// propagation and scanning race benignly; retry.
			if !sleepCtx(tc.ctx, time.Millisecond) {
				return nil, tc.ctx.Err()
			}
			continue
		}
		if err == nil {
			tc.bytesIn.Add(int64(len(c)))
		}
		return c, err
	}
}

// NumScanInputs returns the number of scan inputs.
func (tc *TaskCtx) NumScanInputs() int { return len(tc.scans) }

// Insert writes one chunk to output i through the pipelined insert path.
func (tc *TaskCtx) Insert(i int, c chunk.Chunk) error {
	start := tc.markBusyEnd()
	defer tc.markWaitEnd(start)
	if tc.inserters[i] == nil {
		tc.inserters[i] = tc.outs[i].Inserter(tc.ctx)
	}
	tc.bytesOut.Add(int64(len(c)))
	return tc.inserters[i].Insert(c)
}

// Writer returns a record-framing writer for output i. Records appended to
// it are packed into chunks of the configured size and inserted into the
// output bag. The worker runtime flushes all writers after the TaskFunc
// returns.
func (tc *TaskCtx) Writer(i int) *chunk.Writer {
	if tc.writers[i] == nil {
		tc.writers[i] = chunk.NewWriter(tc.outs[i].Store().ChunkSize(), func(c chunk.Chunk) error {
			return tc.Insert(i, c)
		})
	}
	return tc.writers[i]
}

// InputName returns the bag name behind input i.
func (tc *TaskCtx) InputName(i int) string { return tc.ins[i].Name() }

// OutputName returns the bag name behind output i.
func (tc *TaskCtx) OutputName(i int) string { return tc.outs[i].Name() }

// Store returns the bag store the worker's bags live in. Partitioned
// writers use it to open physical partition bags at runtime.
func (tc *TaskCtx) Store() *bag.Store { return tc.store }

// Obs returns the cluster observer the worker reports into (nil when
// observability is disabled — all obs handles are nil-safe no-ops).
func (tc *TaskCtx) Obs() *obs.Observer { return tc.obs }

// Job returns the ID of the job the worker belongs to ("" for bare
// masters run outside a cluster).
func (tc *TaskCtx) Job() string { return tc.job }

// OutputPartitions returns the declared base partition count of output i's
// bag (0 for ordinary bags).
func (tc *TaskCtx) OutputPartitions(i int) int {
	if spec := tc.OutputBagSpec(i); spec != nil {
		return spec.Partitions
	}
	return 0
}

// OutputBagSpec returns the declared spec of output i's bag (nil if the
// bag is not declared in the app graph, e.g. a partial bag).
func (tc *TaskCtx) OutputBagSpec(i int) *BagSpec {
	if tc.app == nil {
		return nil
	}
	return tc.app.BagSpecFor(tc.OutputName(i))
}

// OnFinish registers fn to run (on the worker goroutine) after the task
// function returns successfully, before completion is reported. Partitioned
// writers register their flush here so buffered chunks are never lost.
func (tc *TaskCtx) OnFinish(fn func() error) {
	tc.onFinish = append(tc.onFinish, fn)
}

// BytesIn reports total input bytes consumed so far.
func (tc *TaskCtx) BytesIn() int64 { return tc.bytesIn.Load() }

// BytesOut reports total output bytes produced so far.
func (tc *TaskCtx) BytesOut() int64 { return tc.bytesOut.Load() }

// loadSnapshot returns and resets the busy/wait accounting. The task
// manager's monitor calls this once per monitoring interval; the returned
// busy fraction drives overload detection.
func (tc *TaskCtx) loadSnapshot() (busyFrac float64) {
	now := time.Now().UnixNano()
	// Attribute the currently-accruing busy span.
	tc.busyNS.Add(now - tc.last.Swap(now))
	busy := tc.busyNS.Swap(0)
	wait := tc.waitNS.Swap(0)
	total := busy + wait
	if total <= 0 {
		return 0
	}
	return float64(busy) / float64(total)
}

// finish flushes all writers and inserters and runs OnFinish hooks.
// Called by the worker runtime after the TaskFunc returns successfully.
func (tc *TaskCtx) finish() error {
	for i, w := range tc.writers {
		if w != nil {
			if err := w.Flush(); err != nil {
				return fmt.Errorf("core: flushing output %d: %w", i, err)
			}
		}
	}
	for _, fn := range tc.onFinish {
		if err := fn(); err != nil {
			return err
		}
	}
	for i, ins := range tc.inserters {
		if ins != nil {
			if err := ins.Close(); err != nil {
				return fmt.Errorf("core: closing output %d: %w", i, err)
			}
		}
	}
	return nil
}

// close releases consumer pipelines.
func (tc *TaskCtx) close() {
	for _, in := range tc.ins {
		in.CloseConsumer()
	}
}

// worker is one executing task instance (original or clone) on a compute
// node.
type worker struct {
	bp     *Blueprint
	tc     *TaskCtx
	cancel context.CancelFunc
	done   chan struct{}
	gate   chan struct{}

	released atomic.Bool
	killed   atomic.Bool
	err      error
}

// runWorker executes the blueprint's function and reports the outcome.
func runWorker(ctx context.Context, bp *Blueprint, store *bag.Store, app *App) *worker {
	w := runWorkerGated(ctx, bp, store, app, nil, "")
	w.release()
	return w
}

// runWorkerGated prepares a worker whose goroutine blocks before touching
// any bag until release (or kill) is called. The gate lets a task manager
// register the worker — making it visible to the master's KillTask — and
// re-validate the blueprint's epoch before the worker consumes its first
// chunk. Without it, a stale-epoch blueprint claimed during failure
// recovery could start consuming a freshly rewound input bag in the gap
// between the recovery's kill sweep and the node noticing the staleness.
func runWorkerGated(ctx context.Context, bp *Blueprint, store *bag.Store, app *App, o *obs.Observer, job string) *worker {
	wctx, cancel := context.WithCancel(ctx)
	w := &worker{
		bp:     bp,
		tc:     newTaskCtx(wctx, bp, store, app, o, job),
		cancel: cancel,
		done:   make(chan struct{}),
		gate:   make(chan struct{}),
	}
	go func() {
		defer close(w.done)
		defer w.tc.close()
		select {
		case <-w.gate:
		case <-wctx.Done():
			w.err = wctx.Err()
			return
		}
		spec := app.Task(bp.Spec)
		if spec == nil {
			w.err = fmt.Errorf("core: unknown task spec %q", bp.Spec)
			return
		}
		fn := spec.Run
		if bp.Kind == KindMerge {
			fn = spec.Merge
		}
		if fn == nil {
			w.err = fmt.Errorf("core: task %q has no function for kind %d", bp.Spec, bp.Kind)
			return
		}
		if err := fn(w.tc); err != nil {
			w.err = err
			return
		}
		w.err = w.tc.finish()
	}()
	return w
}

// release opens the gate: the worker begins executing its task function.
func (w *worker) release() {
	if w.released.CompareAndSwap(false, true) {
		close(w.gate)
	}
}

// kill cancels the worker without reporting completion (used during
// failure recovery to terminate clones of a failed task).
func (w *worker) kill() {
	w.killed.Store(true)
	w.cancel()
}
