package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/obs"
)

// TaskCtx is the execution context handed to a TaskFunc. It exposes the
// worker's input and output bags and transparently accounts busy/wait time
// for the overload detector.
type TaskCtx struct {
	ctx   context.Context
	bp    *Blueprint
	store *bag.Store
	app   *App
	obs   *obs.Observer // nil-safe; instrumented helpers no-op when unset
	job   string        // owning job ID, labels per-job series

	ins   []*bag.Bag
	outs  []*bag.Bag
	scans []*bag.Scanner

	writers   []*chunk.Writer
	inserters []*bag.Inserter
	onFinish  []func() error

	// load accounting (nanoseconds)
	busyNS atomic.Int64
	waitNS atomic.Int64
	last   atomic.Int64 // wall-clock ns when the worker last got control

	bytesIn  atomic.Int64
	bytesOut atomic.Int64
	chunksIn atomic.Int64

	// Profiler span accounting. Unlike busyNS/waitNS (reset every monitor
	// interval by loadSnapshot), spans accumulate over the worker's whole
	// lifetime. Plain fields on purpose: they are written only by the
	// worker goroutine (the shuffle writers a task owns run on it too) and
	// read by the completion path after the done channel closes, which
	// orders the accesses. spanOff disables the extra bookkeeping
	// (ClusterConfig.DisableSpans); it is set before the worker's gate
	// opens, never after.
	spans       spanAcc
	spanOff     bool
	spanStartNS int64 // unix ns when the worker got its first control
	spanEndNS   int64 // unix ns when the task function (and finish) returned
	queueNS     int64 // blueprint publication to worker start

	// yieldReq asks the worker to stop consuming at its next chunk
	// boundary and finish normally (fair-share preemption of clones).
	yieldReq atomic.Bool
	// yieldApplied records that the input pipelines have been quiesced
	// (worker goroutine only).
	yieldApplied bool
}

func newTaskCtx(ctx context.Context, bp *Blueprint, store *bag.Store, app *App, o *obs.Observer, job string) *TaskCtx {
	tc := &TaskCtx{ctx: ctx, bp: bp, store: store, app: app, obs: o, job: job}
	for _, in := range bp.Inputs {
		tc.ins = append(tc.ins, store.Bag(in))
	}
	for _, out := range bp.Outputs {
		tc.outs = append(tc.outs, store.Bag(out))
	}
	for _, sc := range bp.ScanInputs {
		tc.scans = append(tc.scans, store.Scanner(sc))
	}
	tc.writers = make([]*chunk.Writer, len(tc.outs))
	tc.inserters = make([]*bag.Inserter, len(tc.outs))
	tc.last.Store(time.Now().UnixNano())
	return tc
}

// Context returns the worker's cancellation context. TaskFuncs performing
// long computations should check it periodically.
func (tc *TaskCtx) Context() context.Context { return tc.ctx }

// Blueprint returns the worker's blueprint (ID, worker index, epoch).
func (tc *TaskCtx) Blueprint() *Blueprint { return tc.bp }

// NumInputs returns the number of input bags.
func (tc *TaskCtx) NumInputs() int { return len(tc.ins) }

// NumOutputs returns the number of output bags.
func (tc *TaskCtx) NumOutputs() int { return len(tc.outs) }

// markBusyStart transitions accounting from "worker computing" to "worker
// waiting on storage" and returns the wait-start timestamp.
func (tc *TaskCtx) markBusyEnd() int64 {
	now := time.Now().UnixNano()
	tc.busyNS.Add(now - tc.last.Load())
	return now
}

// markWaitEnd closes a wait span and returns its duration, so callers
// can attribute the same measured interval to a profiler phase without
// a second clock read.
func (tc *TaskCtx) markWaitEnd(start int64) int64 {
	now := time.Now().UnixNano()
	tc.waitNS.Add(now - start)
	tc.last.Store(now)
	return now - start
}

// spanAcc accumulates the profiler's per-phase durations and shuffle
// write counts. See the TaskCtx.spans field comment for why plain
// fields are safe here.
type spanAcc struct {
	readNS     int64 // blocked removing/scanning input chunks
	writeNS    int64 // blocked on pipelined output inserts
	shuffleNS  int64 // partitioned-writer chunk flushes (shuffle.Writer)
	finalizeNS int64 // end-of-task flush beyond the above
	records    int64
	parts      map[string]int64
}

func (a *spanAcc) addRead(ns int64)  { a.readNS += ns }
func (a *spanAcc) addWrite(ns int64) { a.writeNS += ns }

// requestYield asks the worker to wind down consumption and finish
// normally: its input pipelines are quiesced (no further chunks are
// removed from storage, but chunks the prefetch pipeline already
// consumed keep flowing — dropping them would lose data), the task
// function then observes an ordinary end-of-input, flushes its outputs,
// and completes. The chunks the worker never took are consumed by the
// task's other workers through ordinary late binding. This is how the
// multi-job scheduler preempts a clone without losing or redoing work;
// it is only ever invoked on clones whose input bags another live worker
// of the same task drains.
func (tc *TaskCtx) requestYield() { tc.yieldReq.Store(true) }

// Remove pulls the next chunk from input i. It returns bag.ErrEmpty when
// the input is exhausted, which is the worker's termination signal.
func (tc *TaskCtx) Remove(i int) (chunk.Chunk, error) {
	if tc.yieldReq.Load() && !tc.yieldApplied {
		tc.yieldApplied = true
		for _, in := range tc.ins {
			in.Quiesce()
		}
	}
	start := tc.markBusyEnd()
	c, err := tc.ins[i].Remove(tc.ctx)
	tc.spans.addRead(tc.markWaitEnd(start))
	if err == nil {
		tc.bytesIn.Add(int64(len(c)))
		tc.chunksIn.Add(1)
	}
	return c, err
}

// Scan reads the next chunk of scan input i without consuming it. Unlike
// Remove, every worker of the task sees the complete bag. It returns
// bag.ErrEmpty at the end of the (sealed) bag.
func (tc *TaskCtx) Scan(i int) (chunk.Chunk, error) {
	start := tc.markBusyEnd()
	defer func() { tc.spans.addRead(tc.markWaitEnd(start)) }()
	for {
		c, err := tc.scans[i].Next(tc.ctx)
		if err == bag.ErrAgain {
			// A scheduled task's scan inputs are sealed, but seal
			// propagation and scanning race benignly; retry.
			if !sleepCtx(tc.ctx, time.Millisecond) {
				return nil, tc.ctx.Err()
			}
			continue
		}
		if err == nil {
			tc.bytesIn.Add(int64(len(c)))
		}
		return c, err
	}
}

// NumScanInputs returns the number of scan inputs.
func (tc *TaskCtx) NumScanInputs() int { return len(tc.scans) }

// Insert writes one chunk to output i through the pipelined insert path.
func (tc *TaskCtx) Insert(i int, c chunk.Chunk) error {
	start := tc.markBusyEnd()
	defer func() { tc.spans.addWrite(tc.markWaitEnd(start)) }()
	if tc.inserters[i] == nil {
		tc.inserters[i] = tc.outs[i].Inserter(tc.ctx)
	}
	tc.bytesOut.Add(int64(len(c)))
	return tc.inserters[i].Insert(c)
}

// Writer returns a record-framing writer for output i. Records appended to
// it are packed into chunks of the configured size and inserted into the
// output bag. The worker runtime flushes all writers after the TaskFunc
// returns.
func (tc *TaskCtx) Writer(i int) *chunk.Writer {
	if tc.writers[i] == nil {
		tc.writers[i] = chunk.NewWriter(tc.outs[i].Store().ChunkSize(), func(c chunk.Chunk) error {
			return tc.Insert(i, c)
		})
	}
	return tc.writers[i]
}

// InputName returns the bag name behind input i.
func (tc *TaskCtx) InputName(i int) string { return tc.ins[i].Name() }

// OutputName returns the bag name behind output i.
func (tc *TaskCtx) OutputName(i int) string { return tc.outs[i].Name() }

// Store returns the bag store the worker's bags live in. Partitioned
// writers use it to open physical partition bags at runtime.
func (tc *TaskCtx) Store() *bag.Store { return tc.store }

// Obs returns the cluster observer the worker reports into (nil when
// observability is disabled — all obs handles are nil-safe no-ops).
func (tc *TaskCtx) Obs() *obs.Observer { return tc.obs }

// Job returns the ID of the job the worker belongs to ("" for bare
// masters run outside a cluster).
func (tc *TaskCtx) Job() string { return tc.job }

// OutputPartitions returns the declared base partition count of output i's
// bag (0 for ordinary bags).
func (tc *TaskCtx) OutputPartitions(i int) int {
	if spec := tc.OutputBagSpec(i); spec != nil {
		return spec.Partitions
	}
	return 0
}

// OutputBagSpec returns the declared spec of output i's bag (nil if the
// bag is not declared in the app graph, e.g. a partial bag).
func (tc *TaskCtx) OutputBagSpec(i int) *BagSpec {
	if tc.app == nil {
		return nil
	}
	return tc.app.BagSpecFor(tc.OutputName(i))
}

// OnFinish registers fn to run (on the worker goroutine) after the task
// function returns successfully, before completion is reported. Partitioned
// writers register their flush here so buffered chunks are never lost.
func (tc *TaskCtx) OnFinish(fn func() error) {
	tc.onFinish = append(tc.onFinish, fn)
}

// AddShuffleSpan credits ns of partitioned-writer flush time, plus the
// writer's exact record counts (total and per physical partition bag),
// to the worker's profile. The engine's stage sinks call this from the
// shuffle writer's close hook; custom tasks driving a shuffle.Writer
// directly may call it too. Worker goroutine only.
func (tc *TaskCtx) AddShuffleSpan(ns, records int64, parts map[string]int64) {
	if tc.spanOff {
		return
	}
	tc.spans.shuffleNS += ns
	tc.spans.records += records
	if len(parts) > 0 {
		if tc.spans.parts == nil {
			tc.spans.parts = make(map[string]int64, len(parts))
		}
		for name, n := range parts {
			tc.spans.parts[name] += n
		}
	}
}

// SpansEnabled reports whether the task profiler is recording phase
// spans for this worker (on unless ClusterConfig.DisableSpans).
func (tc *TaskCtx) SpansEnabled() bool { return !tc.spanOff }

// ShuffleSpanHook returns AddShuffleSpan in the shape
// shuffle.WriterConfig.OnSpans wants, or nil when span profiling is off —
// a nil hook keeps clock reads off the writer's flush path entirely.
func (tc *TaskCtx) ShuffleSpanHook() func(flushNS, records int64, parts map[string]int64) {
	if tc.spanOff {
		return nil
	}
	return tc.AddShuffleSpan
}

// spanSnapshot assembles the worker's TaskSpans record for the done
// event. Call only after the worker goroutine exited; returns nil when
// span profiling is disabled or the worker never started.
func (tc *TaskCtx) spanSnapshot() *obs.TaskSpans {
	if tc.spanOff || tc.spanStartNS == 0 {
		return nil
	}
	s := &obs.TaskSpans{
		TaskID:     tc.bp.ID,
		Spec:       tc.bp.Spec,
		Worker:     tc.bp.Worker,
		Merge:      tc.bp.Kind == KindMerge,
		StartedNS:  tc.spanStartNS,
		EndedNS:    tc.spanEndNS,
		QueueNS:    tc.queueNS,
		ReadNS:     tc.spans.readNS,
		ShuffleNS:  tc.spans.writeNS + tc.spans.shuffleNS,
		FinalizeNS: tc.spans.finalizeNS,
		BytesIn:    tc.bytesIn.Load(),
		BytesOut:   tc.bytesOut.Load(),
		ChunksIn:   tc.chunksIn.Load(),
		Records:    tc.spans.records,
		Parts:      tc.spans.parts,
	}
	// Compute is everything the wall clock covers that no other phase
	// claimed, so the in-worker phases always sum exactly to wall time.
	if c := (s.EndedNS - s.StartedNS) - s.ReadNS - s.ShuffleNS - s.FinalizeNS; c > 0 {
		s.ComputeNS = c
	}
	return s
}

// BytesIn reports total input bytes consumed so far.
func (tc *TaskCtx) BytesIn() int64 { return tc.bytesIn.Load() }

// BytesOut reports total output bytes produced so far.
func (tc *TaskCtx) BytesOut() int64 { return tc.bytesOut.Load() }

// loadSnapshot returns and resets the busy/wait accounting. The task
// manager's monitor calls this once per monitoring interval; the returned
// busy fraction drives overload detection.
func (tc *TaskCtx) loadSnapshot() (busyFrac float64) {
	now := time.Now().UnixNano()
	// Attribute the currently-accruing busy span.
	tc.busyNS.Add(now - tc.last.Swap(now))
	busy := tc.busyNS.Swap(0)
	wait := tc.waitNS.Swap(0)
	total := busy + wait
	if total <= 0 {
		return 0
	}
	return float64(busy) / float64(total)
}

// finish flushes all writers and inserters and runs OnFinish hooks.
// Called by the worker runtime after the TaskFunc returns successfully.
func (tc *TaskCtx) finish() error {
	for i, w := range tc.writers {
		if w != nil {
			if err := w.Flush(); err != nil {
				return fmt.Errorf("core: flushing output %d: %w", i, err)
			}
		}
	}
	for _, fn := range tc.onFinish {
		if err := fn(); err != nil {
			return err
		}
	}
	for i, ins := range tc.inserters {
		if ins != nil {
			if err := ins.Close(); err != nil {
				return fmt.Errorf("core: closing output %d: %w", i, err)
			}
		}
	}
	return nil
}

// close releases consumer pipelines.
func (tc *TaskCtx) close() {
	for _, in := range tc.ins {
		in.CloseConsumer()
	}
}

// worker is one executing task instance (original or clone) on a compute
// node.
type worker struct {
	bp     *Blueprint
	tc     *TaskCtx
	cancel context.CancelFunc
	done   chan struct{}
	gate   chan struct{}

	released atomic.Bool
	killed   atomic.Bool
	err      error
}

// runWorker executes the blueprint's function and reports the outcome.
func runWorker(ctx context.Context, bp *Blueprint, store *bag.Store, app *App) *worker {
	w := runWorkerGated(ctx, bp, store, app, nil, "")
	w.release()
	return w
}

// runWorkerGated prepares a worker whose goroutine blocks before touching
// any bag until release (or kill) is called. The gate lets a task manager
// register the worker — making it visible to the master's KillTask — and
// re-validate the blueprint's epoch before the worker consumes its first
// chunk. Without it, a stale-epoch blueprint claimed during failure
// recovery could start consuming a freshly rewound input bag in the gap
// between the recovery's kill sweep and the node noticing the staleness.
func runWorkerGated(ctx context.Context, bp *Blueprint, store *bag.Store, app *App, o *obs.Observer, job string) *worker {
	wctx, cancel := context.WithCancel(ctx)
	w := &worker{
		bp:     bp,
		tc:     newTaskCtx(wctx, bp, store, app, o, job),
		cancel: cancel,
		done:   make(chan struct{}),
		gate:   make(chan struct{}),
	}
	go func() {
		defer close(w.done)
		defer w.tc.close()
		select {
		case <-w.gate:
		case <-wctx.Done():
			w.err = wctx.Err()
			return
		}
		if !w.tc.spanOff {
			now := time.Now().UnixNano()
			w.tc.spanStartNS = now
			// Queue wait: blueprint publication to worker start. Master
			// and node clocks are shared in-process; a recovered
			// blueprint without a stamp contributes zero.
			if bp.ScheduledAt > 0 && now > bp.ScheduledAt {
				w.tc.queueNS = now - bp.ScheduledAt
			}
			defer func() { w.tc.spanEndNS = time.Now().UnixNano() }()
		}
		spec := app.Task(bp.Spec)
		if spec == nil {
			w.err = fmt.Errorf("core: unknown task spec %q", bp.Spec)
			return
		}
		fn := spec.Run
		if bp.Kind == KindMerge {
			fn = spec.Merge
		}
		if fn == nil {
			w.err = fmt.Errorf("core: task %q has no function for kind %d", bp.Spec, bp.Kind)
			return
		}
		if err := fn(w.tc); err != nil {
			w.err = err
			return
		}
		// Finalize is the end-of-task flush minus the inserter waits and
		// shuffle flushes inside it, which stay attributed to the
		// shuffle/write phase.
		preW, preS := w.tc.spans.writeNS, w.tc.spans.shuffleNS
		fstart := time.Now()
		w.err = w.tc.finish()
		if !w.tc.spanOff {
			fin := time.Since(fstart).Nanoseconds()
			fin -= (w.tc.spans.writeNS - preW) + (w.tc.spans.shuffleNS - preS)
			if fin > 0 {
				w.tc.spans.finalizeNS += fin
			}
		}
	}()
	return w
}

// release opens the gate: the worker begins executing its task function.
func (w *worker) release() {
	if w.released.CompareAndSwap(false, true) {
		close(w.gate)
	}
}

// kill cancels the worker without reporting completion (used during
// failure recovery to terminate clones of a failed task).
func (w *worker) kill() {
	w.killed.Store(true)
	w.cancel()
}
