package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bag"
	"repro/internal/chunk"
)

// TestPipelinedStreaming: a Pipelined consumer starts while its producer
// is still running, streams chunks as they appear, and still produces the
// exact result.
func TestPipelinedStreaming(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var producerDone atomic.Int64  // wall-clock ns when producer finished
	var consumerFirst atomic.Int64 // wall-clock ns of consumer's first chunk

	app := NewApp("stream")
	app.SourceBag("in").Bag("mid").Bag("out")
	app.AddTask(TaskSpec{
		Name:    "produce",
		Inputs:  []string{"in"},
		Outputs: []string{"mid"},
		NoClone: true,
		Run: func(tc *TaskCtx) error {
			w := chunk.NewWriter(256, func(c chunk.Chunk) error { return tc.Insert(0, c) })
			for {
				c, err := tc.Remove(0)
				if err == bag.ErrEmpty {
					producerDone.Store(time.Now().UnixNano())
					return w.Flush()
				}
				if err != nil {
					return err
				}
				r := chunk.NewReader(c)
				for r.Remaining() {
					rec, err := r.Next()
					if err != nil {
						return err
					}
					if err := w.Append(rec); err != nil {
						return err
					}
					// Throttle so the consumer demonstrably overlaps.
					time.Sleep(20 * time.Microsecond)
				}
			}
		},
	})
	app.AddTask(TaskSpec{
		Name:      "consume",
		Inputs:    []string{"mid"},
		Outputs:   []string{"out"},
		Pipelined: true,
		NoClone:   true,
		Run: func(tc *TaskCtx) error {
			var total int64
			first := true
			for {
				c, err := tc.Remove(0)
				if err == bag.ErrEmpty {
					break
				}
				if err != nil {
					return err
				}
				if first {
					consumerFirst.Store(time.Now().UnixNano())
					first = false
				}
				r := chunk.NewReader(c)
				for r.Remaining() {
					rec, _ := r.Next()
					v, _, err := (chunk.Int64Codec{}).Decode(rec)
					if err != nil {
						return err
					}
					total += v
				}
			}
			var buf []byte
			buf = (chunk.Int64Codec{}).Encode(buf, total)
			w := chunk.NewWriter(256, func(c chunk.Chunk) error { return tc.Insert(0, c) })
			if err := w.Append(buf); err != nil {
				return err
			}
			return w.Flush()
		},
	})

	const n = 3000
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSum(t, ctx, cluster.Store()); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	// The streaming property: the consumer saw its first chunk before the
	// producer finished.
	if consumerFirst.Load() == 0 || producerDone.Load() == 0 {
		t.Fatal("timestamps missing")
	}
	if consumerFirst.Load() >= producerDone.Load() {
		t.Errorf("consumer first chunk at %d, after producer finished at %d — no pipelining",
			consumerFirst.Load(), producerDone.Load())
	}
}

// TestPipelinedChain: a three-stage fully pipelined chain delivers the
// exact result.
func TestPipelinedChain(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	copyTask := func(name, in, out string) TaskSpec {
		return TaskSpec{
			Name:      name,
			Inputs:    []string{in},
			Outputs:   []string{out},
			Pipelined: true,
			Run: func(tc *TaskCtx) error {
				for {
					c, err := tc.Remove(0)
					if err == bag.ErrEmpty {
						return nil
					}
					if err != nil {
						return err
					}
					if err := tc.Insert(0, c); err != nil {
						return err
					}
				}
			},
		}
	}
	app := NewApp("chain")
	app.SourceBag("in").Bag("a").Bag("b").Bag("out")
	app.AddTask(copyTask("s1", "in", "a"))
	app.AddTask(copyTask("s2", "a", "b"))
	app.AddTask(copyTask("s3", "b", "out"))

	const n = 5000
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	// Count records in "out".
	sc := cluster.Store().Scanner("out")
	count := 0
	for {
		c, err := sc.Next(ctx)
		if err == bag.ErrAgain || err == bag.ErrEmpty {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		m, err := chunk.Count(c)
		if err != nil {
			t.Fatal(err)
		}
		count += m
	}
	if count != n {
		t.Fatalf("out has %d records, want %d", count, n)
	}
}

// TestPipelinedNotReadyWithoutProducers: a pipelined task whose input is
// an unsealed source bag must not start (no producers to stream from).
func TestPipelinedNotReadyWithoutProducers(t *testing.T) {
	app := NewApp("x")
	app.SourceBag("src").Bag("o")
	app.AddTask(TaskSpec{
		Name: "t", Inputs: []string{"src"}, Outputs: []string{"o"},
		Pipelined: true, Run: nop,
	})
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	// Master-side check: producersScheduled on a producer-less bag is
	// always false, so the task waits for the seal like any other.
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()
	m := NewMaster(app, cluster.Store(), cluster, MasterConfig{})
	if m.producersScheduled("src") {
		t.Fatal("source bag must not be streamable")
	}
}
