package core

import (
	"time"
)

// drainOverloads processes pending overload signals from compute nodes,
// cloning tasks per the cloning heuristic (§4.2).
func (m *Master) drainOverloads() {
	for {
		select {
		case msg := <-m.overloadCh:
			m.maybeClone(msg)
		default:
			return
		}
	}
}

// maybeClone evaluates one clone request. The decision sequence mirrors
// the paper: the signal must be rate-limited (at least CloneInterval since
// the task's last clone), an idle compute slot must exist, and Eq. 2 must
// hold: T > (k+1)·T_IO, where T is the expected remaining time of the
// task, k the current worker count, and T_IO the expected extra I/O time a
// clone introduces (reading remaining state plus merging its output).
func (m *Master) maybeClone(msg overloadMsg) {
	if m.cfg.DisableCloning {
		return
	}
	m.mu.Lock()
	st := m.tasks[msg.bp.Spec]
	if st == nil || msg.bp.Epoch != st.epoch || msg.bp.Kind == KindMerge ||
		!st.scheduled || st.finished || st.spec.NoClone {
		m.mu.Unlock()
		return
	}
	k := st.workers
	if len(st.doneWorkers) >= k {
		m.mu.Unlock()
		return // task is effectively over
	}
	maxWorkers := m.control.TotalSlots()
	if st.spec.MaxClones > 0 && st.spec.MaxClones < maxWorkers {
		maxWorkers = st.spec.MaxClones
	}
	if k >= maxWorkers {
		m.mu.Unlock()
		return
	}
	if time.Since(st.lastClone) < m.cfg.CloneInterval {
		m.mu.Unlock()
		return
	}
	if m.control.FreeSlots() <= 0 {
		m.rejects++
		m.mu.Unlock()
		return
	}
	startedAt := st.startedAt
	// For a consumer of a partitioned shuffle bag, a clone must pull from
	// the overloaded worker's physical partition, not the logical bag —
	// and chunk-level sharing of one partition splits a key's records
	// across workers, so it is only sound when the edge declared
	// record-level parallelism safe (Spread) or the task reconciles
	// partials through a merge procedure. Otherwise splitting is the
	// skew defense. Speculative requests carry no blueprint inputs and
	// cannot clone partitioned consumers at all.
	var inputs []string
	if len(st.spec.Inputs) == 1 {
		if edge := m.edges[st.spec.Inputs[0]]; edge != nil {
			if len(msg.bp.Inputs) == 0 || (!edge.spec.Spread && !st.spec.requiresMerge()) {
				m.mu.Unlock()
				return
			}
			inputs = msg.bp.Inputs
		}
	}
	input := st.spec.Inputs[0]
	if inputs != nil {
		input = inputs[0]
	}
	m.mu.Unlock()

	if !m.cfg.DisableHeuristic {
		if !m.cloneWorthwhile(input, k, startedAt) {
			m.mu.Lock()
			m.rejects++
			m.mu.Unlock()
			return
		}
	}

	// Clone: hand out the next worker index and schedule it like any
	// other task ("the master performs task cloning by scheduling a copy
	// of the task on an idle node, as it would any other task", §3.2).
	m.mu.Lock()
	if st.epoch != msg.bp.Epoch || st.finished || st.workers != k {
		m.mu.Unlock()
		return // state moved under us; the next signal will retry
	}
	w := st.workers
	st.workers++
	st.lastClone = time.Now()
	m.clones++
	bp := m.blueprintFor(st, w, inputs)
	m.mu.Unlock()

	if err := m.wb.pushReady(m.ctx, bp); err != nil {
		m.fail(err)
	}
}

// cloneWorthwhile evaluates Eq. 2 against live bag statistics.
//
//	T      — remaining task time, estimated from the input bag's remaining
//	         bytes and the task's observed aggregate drain rate;
//	T_IO   — extra I/O the clone causes: it will read ≈ R/(k+1) of the
//	         remaining input and write a comparable partial output that
//	         must then be merged, so T_IO ≈ 2·(R/(k+1))/BW.
//
// Clone iff T > (k+1)·T_IO.
func (m *Master) cloneWorthwhile(input string, k int, startedAt time.Time) bool {
	stats, err := m.store.SampleSlots(m.ctx, input, m.cfg.SampleSlots)
	if err != nil {
		return false
	}
	remaining := float64(stats.RemainingBytes())
	if remaining <= 0 {
		return false // nothing left to split
	}
	elapsed := time.Since(startedAt).Seconds()
	consumed := float64(stats.ReadBytes)
	if elapsed <= 0 {
		return true
	}
	rate := consumed / elapsed
	if rate <= 0 {
		// No observed progress yet: assume cloning helps.
		return true
	}
	t := remaining / rate
	tio := 2 * (remaining / float64(k+1)) / m.cfg.StorageBandwidth
	return t > float64(k+1)*tio
}

// speculativePass proactively clones straggling tasks when speculative
// cloning is enabled: any task still running SpeculativeAfter past its
// start is treated as if it had signalled overload. The usual gates —
// clone-interval rate limiting, free slots, Eq. 2 — still apply through
// maybeClone.
func (m *Master) speculativePass() {
	if !m.cfg.SpeculativeCloning || m.cfg.DisableCloning {
		return
	}
	now := time.Now()
	m.mu.Lock()
	var candidates []*Blueprint
	for name, st := range m.tasks {
		if !st.scheduled || st.finished || st.workers == 0 ||
			len(st.doneWorkers) >= st.workers || st.spec.NoClone {
			continue
		}
		if now.Sub(st.startedAt) < m.cfg.SpeculativeAfter {
			continue
		}
		if now.Sub(st.lastClone) < m.cfg.CloneInterval {
			continue
		}
		candidates = append(candidates, &Blueprint{
			Spec: name, Epoch: st.epoch, Kind: KindTask,
		})
	}
	m.mu.Unlock()
	for _, bp := range candidates {
		m.maybeClone(overloadMsg{node: "(speculative)", bp: bp})
		m.mu.Lock()
		m.speculative++
		m.mu.Unlock()
	}
}

// failureDetectPass declares compute nodes dead after FailTimeout of
// heartbeat silence and recovers their tasks.
func (m *Master) failureDetectPass() {
	if m.cfg.FailTimeout <= 0 {
		return
	}
	now := time.Now()
	m.mu.Lock()
	var deadNodes []string
	for name, ns := range m.nodes {
		if !ns.dead && now.Sub(ns.lastBeat) > m.cfg.FailTimeout {
			ns.dead = true
			deadNodes = append(deadNodes, name)
		}
	}
	m.mu.Unlock()
	for _, node := range deadNodes {
		m.enqueueRecovery(node)
	}
}

// drainRecoveries performs pending node recoveries. It runs on the master
// loop goroutine, so recovery's task-state resets, kills, and storage
// scrubbing are strictly ordered before the next schedulePass — a
// restarted task can never start reading an input bag before its rewind
// lands.
func (m *Master) drainRecoveries() {
	for {
		select {
		case node := <-m.recoverCh:
			m.recoverNode(node)
		default:
			return
		}
	}
}

func (m *Master) enqueueRecovery(node string) {
	select {
	case m.recoverCh <- node:
	default:
		// Queue full: re-mark the node not-dead so failure detection
		// retries next tick. In practice 64 pending recoveries means the
		// cluster is gone anyway.
		m.mu.Lock()
		if ns := m.nodes[node]; ns != nil {
			ns.dead = false
		}
		m.mu.Unlock()
	}
}

// NotifyNodeFailure lets the embedding cluster report a known-dead compute
// node immediately instead of waiting out the heartbeat timeout.
func (m *Master) NotifyNodeFailure(node string) {
	m.mu.Lock()
	ns := m.nodes[node]
	if ns == nil {
		ns = &nodeState{}
		m.nodes[node] = ns
	}
	alreadyDead := ns.dead
	ns.dead = true
	m.mu.Unlock()
	if !alreadyDead {
		m.enqueueRecovery(node)
	}
}

// recoverNode restarts every task that had a worker on the failed node
// (§4.4): terminate all running clones of those tasks, discard their
// output bags, rewind their input bags, and reschedule them at a new
// epoch. Tasks that shared an output bag with a restarted task are also
// restarted (their contribution to the discarded bag is lost), which the
// worklist below handles transitively.
func (m *Master) recoverNode(node string) {
	m.mu.Lock()
	m.recoveries++
	// Find directly affected tasks: unfinished tasks with a worker
	// started on the dead node.
	worklist := make([]string, 0, 4)
	inList := make(map[string]bool)
	for name, st := range m.tasks {
		if st.finished || !st.scheduled {
			continue
		}
		for _, n := range st.running {
			if n == node {
				if !inList[name] {
					worklist = append(worklist, name)
					inList[name] = true
				}
				break
			}
		}
	}

	type restartPlan struct {
		spec    string
		epoch   int // epoch being aborted
		discard []string
		rewind  []string
	}
	var plans []restartPlan
	for len(worklist) > 0 {
		name := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		st := m.tasks[name]
		plan := restartPlan{spec: name, epoch: st.epoch}
		// Outputs to discard: partial bags (if merging) plus declared
		// outputs (a sole-worker rename may already have moved data
		// there, and concat-task clones write it directly).
		if st.spec.requiresMerge() {
			plan.discard = append(plan.discard, st.partials()...)
		}
		plan.discard = append(plan.discard, st.spec.Outputs...)
		plan.rewind = append(plan.rewind, st.spec.Inputs...)
		plans = append(plans, plan)

		// Restarting this task discards its declared outputs; other
		// producers of those bags lose their contribution and must be
		// restarted too, even if they already finished.
		for _, out := range st.spec.Outputs {
			for _, p := range m.app.Producers(out) {
				if p != name && !inList[p] && m.tasks[p].scheduled {
					worklist = append(worklist, p)
					inList[p] = true
				}
			}
		}
		// Reset master state for the task at a fresh epoch.
		if st.finished {
			m.finished--
		}
		for _, out := range st.spec.Outputs {
			delete(m.sealed, out)
		}
		st.reset(st.epoch + 1)
	}
	m.mu.Unlock()

	// Execute the plans outside the lock: kill clones cluster-wide, then
	// scrub storage. The tasks will be rescheduled by the next
	// schedulePass once their (still sealed) inputs qualify.
	for _, plan := range plans {
		m.control.KillTask(plan.spec, plan.epoch)
	}
	for _, plan := range plans {
		for _, b := range plan.discard {
			for _, phys := range m.physicalBags(b) {
				if err := m.store.Discard(m.ctx, phys); err != nil {
					m.fail(err)
					return
				}
			}
			// Discarding a shuffle edge's data also discards its sketch
			// state: the restarted producers re-push from zero, and stale
			// cumulative stats from the aborted epoch must not
			// double-count the records they will re-write.
			if m.edges[b] != nil {
				if err := m.store.DeleteSketch(m.ctx, b); err != nil {
					m.fail(err)
					return
				}
			}
		}
		for _, b := range plan.rewind {
			for _, phys := range m.physicalBags(b) {
				if err := m.store.Rewind(m.ctx, phys); err != nil {
					m.fail(err)
					return
				}
			}
		}
	}
}
