package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bag"
	"repro/internal/chunk"
)

func testClusterConfig() ClusterConfig {
	return ClusterConfig{
		StorageNodes: 4,
		ComputeNodes: 4,
		SlotsPerNode: 2,
		ChunkSize:    1 << 10,
		Node: NodeConfig{
			PollInterval:      time.Millisecond,
			MonitorInterval:   5 * time.Millisecond,
			HeartbeatInterval: 2 * time.Millisecond,
		},
		Master: MasterConfig{
			PollInterval:  time.Millisecond,
			CloneInterval: 5 * time.Millisecond,
		},
	}
}

// loadInts loads n int64 records into a source bag and seals it.
func loadInts(t *testing.T, ctx context.Context, store *bag.Store, bagName string, n int) {
	t.Helper()
	h := store.Bag(bagName)
	w := chunk.NewTypedWriter[int64](chunk.Int64Codec{}, store.ChunkSize(), func(c chunk.Chunk) error {
		return h.Insert(ctx, c)
	})
	for i := 0; i < n; i++ {
		if err := w.Write(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := store.Seal(ctx, bagName); err != nil {
		t.Fatal(err)
	}
}

// sumApp builds a two-stage pipeline: identity copy then sum-with-merge.
// The copy stage busy-loops per record so runs last long enough for fault
// injection. processed counts records seen by the copy stage (>= n after
// restarts).
func sumApp(processed *atomic.Int64) *App {
	app := NewApp("fault")
	app.SourceBag("in").Bag("mid").Bag("out")
	app.AddTask(TaskSpec{
		Name:    "copy",
		Inputs:  []string{"in"},
		Outputs: []string{"mid"},
		Run: func(tc *TaskCtx) error {
			w := chunk.NewWriter(1<<10, func(c chunk.Chunk) error { return tc.Insert(0, c) })
			for {
				c, err := tc.Remove(0)
				if err == bag.ErrEmpty {
					return w.Flush()
				}
				if err != nil {
					return err
				}
				r := chunk.NewReader(c)
				for r.Remaining() {
					rec, err := r.Next()
					if err != nil {
						return err
					}
					// Simulated per-record work, interruptible.
					for i := 0; i < 50; i++ {
						if tc.Context().Err() != nil {
							return tc.Context().Err()
						}
					}
					processed.Add(1)
					if err := w.Append(rec); err != nil {
						return err
					}
				}
			}
		},
	})
	app.AddTask(TaskSpec{
		Name:    "sum",
		Inputs:  []string{"mid"},
		Outputs: []string{"out"},
		Merge: func(tc *TaskCtx) error {
			var total int64
			for i := 0; i < tc.NumInputs(); i++ {
				for {
					c, err := tc.Remove(i)
					if err == bag.ErrEmpty {
						break
					}
					if err != nil {
						return err
					}
					r := chunk.NewReader(c)
					for r.Remaining() {
						rec, _ := r.Next()
						v, _, err := (chunk.Int64Codec{}).Decode(rec)
						if err != nil {
							return err
						}
						total += v
					}
				}
			}
			var buf []byte
			buf = (chunk.Int64Codec{}).Encode(buf, total)
			w := chunk.NewWriter(1<<10, func(c chunk.Chunk) error { return tc.Insert(0, c) })
			if err := w.Append(buf); err != nil {
				return err
			}
			return w.Flush()
		},
		Run: func(tc *TaskCtx) error {
			var total int64
			for {
				c, err := tc.Remove(0)
				if err == bag.ErrEmpty {
					break
				}
				if err != nil {
					return err
				}
				r := chunk.NewReader(c)
				for r.Remaining() {
					rec, _ := r.Next()
					v, _, err := (chunk.Int64Codec{}).Decode(rec)
					if err != nil {
						return err
					}
					total += v
				}
			}
			var buf []byte
			buf = (chunk.Int64Codec{}).Encode(buf, total)
			w := chunk.NewWriter(1<<10, func(c chunk.Chunk) error { return tc.Insert(0, c) })
			if err := w.Append(buf); err != nil {
				return err
			}
			return w.Flush()
		},
	})
	return app
}

// readSum collects the single int64 result from the out bag.
func readSum(t *testing.T, ctx context.Context, store *bag.Store) int64 {
	t.Helper()
	return readSumBag(t, ctx, store, "out")
}

// readSumBag collects the int64 sum from a named (possibly namespaced)
// result bag.
func readSumBag(t *testing.T, ctx context.Context, store *bag.Store, bagName string) int64 {
	t.Helper()
	sc := store.Scanner(bagName)
	var total int64
	for {
		c, err := sc.Next(ctx)
		if err == bag.ErrAgain || err == bag.ErrEmpty {
			return total
		}
		if err != nil {
			t.Fatal(err)
		}
		r := chunk.NewReader(c)
		for r.Remaining() {
			rec, _ := r.Next()
			v, _, err := (chunk.Int64Codec{}).Decode(rec)
			if err != nil {
				t.Fatal(err)
			}
			total += v
		}
	}
}

// TestComputeNodeCrashRecovery crashes a compute node mid-run and checks
// that the job still produces the correct result via task restart.
func TestComputeNodeCrashRecovery(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const n = 20000
	var processed atomic.Int64
	app := sumApp(&processed)
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Start(ctx, app); err != nil {
		t.Fatal(err)
	}
	// Let the copy stage get going, then kill a node.
	for processed.Load() < n/10 {
		if ctx.Err() != nil {
			t.Fatal("timed out waiting for progress")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cluster.CrashComputeNode("compute-0", true); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSum(t, ctx, cluster.Store()); got != want {
		t.Fatalf("sum = %d, want %d (processed %d, stats %+v)", got, want,
			processed.Load(), cluster.Master().Stats())
	}
	stats := cluster.Master().Stats()
	if stats.Recoveries == 0 {
		t.Error("expected at least one recovery")
	}
	t.Logf("processed %d records (n=%d), stats %+v", processed.Load(), n, stats)
}

// TestComputeNodeCrashByHeartbeat exercises failure detection via
// heartbeat timeout rather than explicit notification.
func TestComputeNodeCrashByHeartbeat(t *testing.T) {
	cfg := testClusterConfig()
	cfg.Master.FailTimeout = 200 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const n = 20000
	var processed atomic.Int64
	app := sumApp(&processed)
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Start(ctx, app); err != nil {
		t.Fatal(err)
	}
	for processed.Load() < n/10 {
		if ctx.Err() != nil {
			t.Fatal("timed out waiting for progress")
		}
		time.Sleep(time.Millisecond)
	}
	// Crash the node that is actually running the copy task, so there is
	// always something to recover. notify=false: the master must detect
	// the silence itself via the heartbeat timeout.
	var victim string
	for victim == "" {
		if ctx.Err() != nil {
			t.Fatal("timed out waiting for running-bag evidence")
		}
		if nodes := cluster.Master().RunningOn("copy"); len(nodes) > 0 {
			victim = nodes[0]
		}
		time.Sleep(time.Millisecond)
	}
	if err := cluster.CrashComputeNode(victim, false); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSum(t, ctx, cluster.Store()); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if cluster.Master().Stats().Recoveries == 0 {
		t.Error("expected heartbeat-timeout recovery")
	}
}

// TestMasterCrashRecovery stops the master mid-run, starts a fresh one,
// and checks that it rebuilds state from the work bags and completes the
// job exactly once.
func TestMasterCrashRecovery(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const n = 20000
	var processed atomic.Int64
	app := sumApp(&processed)
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Start(ctx, app); err != nil {
		t.Fatal(err)
	}
	for processed.Load() < n/10 {
		if ctx.Err() != nil {
			t.Fatal("timed out waiting for progress")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cluster.CrashMaster(); err != nil {
		t.Fatal(err)
	}
	// Compute nodes keep draining the ready bag during the outage.
	time.Sleep(20 * time.Millisecond)
	cluster.RecoverMaster(ctx)
	if err := cluster.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSum(t, ctx, cluster.Store()); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	// Exactly-once: every record processed exactly one time (no compute
	// failures here, so no restarts should have occurred).
	if processed.Load() != n {
		t.Errorf("processed %d records, want exactly %d", processed.Load(), n)
	}
}

// TestStorageNodeFailover runs with 2× replication, crashes a storage
// node mid-run, and checks the job completes correctly from backups.
func TestStorageNodeFailover(t *testing.T) {
	cfg := testClusterConfig()
	cfg.Replication = 2
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const n = 20000
	var processed atomic.Int64
	app := sumApp(&processed)
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Start(ctx, app); err != nil {
		t.Fatal(err)
	}
	for processed.Load() < n/10 {
		if ctx.Err() != nil {
			t.Fatal("timed out waiting for progress")
		}
		time.Sleep(time.Millisecond)
	}
	crashEnabled := true
	if crashEnabled {
		if err := cluster.CrashStorageNode("storage-2"); err != nil {
			t.Fatal(err)
		}
	}
	if err := cluster.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSum(t, ctx, cluster.Store()); got != want {
		t.Fatalf("sum = %d, want %d (processed %d records, stats %+v)",
			got, want, processed.Load(), cluster.Master().Stats())
	}
}

// TestElasticCompute adds a compute node mid-run and gracefully removes
// another; the job must complete correctly (§3.4).
func TestElasticCompute(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const n = 20000
	var processed atomic.Int64
	app := sumApp(&processed)
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Start(ctx, app); err != nil {
		t.Fatal(err)
	}
	for processed.Load() < n/20 {
		if ctx.Err() != nil {
			t.Fatal("timed out waiting for progress")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := cluster.AddComputeNode(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cluster.RemoveComputeNode("compute-3"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSum(t, ctx, cluster.Store()); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if processed.Load() != n {
		t.Errorf("processed %d records, want exactly %d (graceful removal must not restart)", processed.Load(), n)
	}
}

// TestAddStorageNode adds a storage node mid-run; new bag handles spread
// data over the larger cluster and the job completes.
func TestAddStorageNode(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const n = 10000
	var processed atomic.Int64
	app := sumApp(&processed)
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Start(ctx, app); err != nil {
		t.Fatal(err)
	}
	name := cluster.AddStorageNode()
	if name == "" {
		t.Fatal("no storage node added")
	}
	if err := cluster.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSum(t, ctx, cluster.Store()); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}
