package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDebugEndpointsLiveCluster runs two concurrent jobs to completion
// and exercises the debug surface against the live cluster: /metrics
// must expose per-job task counters in text exposition format, and
// /debug/trace must serve the typed event log with working job filters.
func TestDebugEndpointsLiveCluster(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const nA, nB = 8000, 6000
	var procA, procB atomic.Int64
	hA, err := cluster.SubmitJob(ctx, sumApp(&procA), JobConfig{Name: "jobA"})
	if err != nil {
		t.Fatal(err)
	}
	hB, err := cluster.SubmitJob(ctx, sumApp(&procB), JobConfig{Name: "jobB"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), hA.Bag("in"), nA)
	loadIntsBag(t, ctx, cluster.Store(), hB.Bag("in"), nB)
	if err := hA.Wait(ctx); err != nil {
		t.Fatalf("jobA: %v", err)
	}
	if err := hB.Wait(ctx); err != nil {
		t.Fatalf("jobB: %v", err)
	}

	srv := httptest.NewServer(cluster.DebugHandler())
	defer srv.Close()
	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// /metrics: text exposition with per-job labeled series for both jobs.
	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		`hurricane_core_tasks_finished_total{job="jobA"}`,
		`hurricane_core_tasks_finished_total{job="jobB"}`,
		`hurricane_ctrl_snapshots_total{job="jobA"}`,
		`hurricane_sched_lease_grants_total{job="jobB"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing series %q; got:\n%s", want, body)
		}
	}

	// /debug/trace: typed events for both jobs; the job filter narrows.
	body, ct = get("/debug/trace")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/trace content type %q", ct)
	}
	var trace struct {
		Dropped uint64      `json:"dropped"`
		Events  []obs.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}
	jobs := map[string]bool{}
	types := map[obs.EventType]bool{}
	for _, e := range trace.Events {
		jobs[e.Job] = true
		types[e.Type] = true
	}
	if !jobs["jobA"] || !jobs["jobB"] {
		t.Fatalf("trace missing a job's events: %v", jobs)
	}
	if !types[obs.EvTaskScheduled] || !types[obs.EvTaskFinished] {
		t.Fatalf("trace missing lifecycle events: %v", types)
	}
	body, _ = get("/debug/trace?job=jobA&type=TaskFinished")
	var filtered struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Events) == 0 {
		t.Fatal("job+type filter returned no events")
	}
	for _, e := range filtered.Events {
		if e.Job != "jobA" || e.Type != obs.EvTaskFinished {
			t.Fatalf("filter leak: %+v", e)
		}
	}

	// /debug/skew: well-formed JSON (sumApp has no partitioned edge, so
	// an empty list is the correct answer — not an error).
	body, ct = get("/debug/skew")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/skew content type %q", ct)
	}
	var report []SkewEdge
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("/debug/skew not JSON: %v", err)
	}

	// JobHandle.Metrics: the job label is stripped and the counts match
	// the per-job series from /metrics.
	mA := hA.Metrics()
	if mA["hurricane_core_tasks_finished_total"] <= 0 {
		t.Fatalf("jobA Metrics missing finished tasks: %v", mA)
	}
	if len(hA.Trace()) == 0 {
		t.Fatal("jobA Trace empty")
	}
	for _, e := range hA.Trace() {
		if e.Job != "jobA" {
			t.Fatalf("jobA trace contains foreign event %+v", e)
		}
	}
}

// TestContinuousTelemetryLiveCluster: the sampler starts with the
// compute pool, records registry series into the time-series recorder,
// evaluates the watchdog rules, and the three telemetry endpoints serve
// it all over the debug mux.
func TestContinuousTelemetryLiveCluster(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.SampleInterval = 5 * time.Millisecond
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var proc atomic.Int64
	h, err := cluster.SubmitJob(ctx, sumApp(&proc), JobConfig{Name: "ts"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), h.Bag("in"), 4000)
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// The sampler runs on its own cadence; give it a few ticks past job
	// completion so the finished-task counters are on the timeline.
	deadline := time.Now().Add(5 * time.Second)
	for cluster.Recorder().Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if cluster.Recorder().Samples() < 3 {
		t.Fatalf("sampler took no samples (got %d)", cluster.Recorder().Samples())
	}

	srv := httptest.NewServer(cluster.DebugHandler())
	defer srv.Close()
	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// /debug/timeseries: the job's task counter has a sampled history
	// with a derived rate track, and the ?series= filter narrows.
	body, ct := get("/debug/timeseries?series=hurricane_core_tasks_finished_total")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/timeseries content type %q", ct)
	}
	var ts struct {
		Samples uint64 `json:"samples"`
		Series  []struct {
			Name    string `json:"name"`
			Counter bool   `json:"counter"`
			Points  []struct {
				TUs int64   `json:"t_us"`
				V   float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &ts); err != nil {
		t.Fatalf("/debug/timeseries not JSON: %v", err)
	}
	if ts.Samples < 3 || len(ts.Series) == 0 {
		t.Fatalf("timeseries = %d samples, %d series", ts.Samples, len(ts.Series))
	}
	found := false
	for _, s := range ts.Series {
		if !strings.Contains(s.Name, "hurricane_core_tasks_finished_total") {
			t.Fatalf("?series= filter leak: %q", s.Name)
		}
		if strings.Contains(s.Name, `job="ts"`) {
			found = true
			if !s.Counter || len(s.Points) == 0 {
				t.Fatalf("bad series %+v", s)
			}
			if last := s.Points[len(s.Points)-1].V; last <= 0 {
				t.Fatalf("finished-task timeline never rose: %+v", s)
			}
		}
	}
	if !found {
		t.Fatalf("no per-job finished-task series in %s", body)
	}

	// /debug/alerts: the built-in rules are loaded and evaluated.
	body, _ = get("/debug/alerts")
	var al obs.Status
	if err := json.Unmarshal([]byte(body), &al); err != nil {
		t.Fatalf("/debug/alerts not JSON: %v", err)
	}
	if al.Evals < 3 {
		t.Fatalf("watchdog evals = %d", al.Evals)
	}
	rules := map[string]bool{}
	for _, r := range al.Rules {
		rules[r.Name] = true
	}
	if !rules["straggler-task-time"] || !rules["shuffle-heat-imbalance"] {
		t.Fatalf("built-in rules missing: %v", rules)
	}

	// /debug/dash: the self-contained dashboard page renders.
	body, ct = get("/debug/dash")
	if !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("/debug/dash content type %q", ct)
	}
	if !strings.Contains(body, "hurricane dash") || !strings.Contains(body, "<canvas") {
		t.Fatal("/debug/dash not the dashboard page")
	}
}

// TestDisableObs: with observability off, every surface degrades to
// empty-but-valid rather than panicking.
func TestDisableObs(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.DisableObs = true
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var proc atomic.Int64
	h, err := cluster.SubmitJob(ctx, sumApp(&proc), JobConfig{Name: "q"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), h.Bag("in"), 2000)
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got := h.Metrics(); len(got) != 0 {
		t.Fatalf("disabled observer produced metrics: %v", got)
	}
	if got := h.Trace(); got != nil {
		t.Fatalf("disabled observer produced trace: %v", got)
	}
	srv := httptest.NewServer(cluster.DebugHandler())
	defer srv.Close()
	// No observer means no sampler either; the telemetry endpoints still
	// answer with empty documents.
	if cluster.Recorder() != nil || cluster.Watch() != nil {
		t.Fatal("unobserved cluster has a recorder/watch")
	}
	for _, path := range []string{"/metrics", "/debug/timeseries", "/debug/alerts", "/debug/dash"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s on unobserved cluster: status %d", path, resp.StatusCode)
		}
	}
}
