package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDebugEndpointsLiveCluster runs two concurrent jobs to completion
// and exercises the debug surface against the live cluster: /metrics
// must expose per-job task counters in text exposition format, and
// /debug/trace must serve the typed event log with working job filters.
func TestDebugEndpointsLiveCluster(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const nA, nB = 8000, 6000
	var procA, procB atomic.Int64
	hA, err := cluster.SubmitJob(ctx, sumApp(&procA), JobConfig{Name: "jobA"})
	if err != nil {
		t.Fatal(err)
	}
	hB, err := cluster.SubmitJob(ctx, sumApp(&procB), JobConfig{Name: "jobB"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), hA.Bag("in"), nA)
	loadIntsBag(t, ctx, cluster.Store(), hB.Bag("in"), nB)
	if err := hA.Wait(ctx); err != nil {
		t.Fatalf("jobA: %v", err)
	}
	if err := hB.Wait(ctx); err != nil {
		t.Fatalf("jobB: %v", err)
	}

	srv := httptest.NewServer(cluster.DebugHandler())
	defer srv.Close()
	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// /metrics: text exposition with per-job labeled series for both jobs.
	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		`hurricane_core_tasks_finished_total{job="jobA"}`,
		`hurricane_core_tasks_finished_total{job="jobB"}`,
		`hurricane_ctrl_snapshots_total{job="jobA"}`,
		`hurricane_sched_lease_grants_total{job="jobB"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing series %q; got:\n%s", want, body)
		}
	}

	// /debug/trace: typed events for both jobs; the job filter narrows.
	body, ct = get("/debug/trace")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/trace content type %q", ct)
	}
	var trace struct {
		Dropped uint64      `json:"dropped"`
		Events  []obs.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}
	jobs := map[string]bool{}
	types := map[obs.EventType]bool{}
	for _, e := range trace.Events {
		jobs[e.Job] = true
		types[e.Type] = true
	}
	if !jobs["jobA"] || !jobs["jobB"] {
		t.Fatalf("trace missing a job's events: %v", jobs)
	}
	if !types[obs.EvTaskScheduled] || !types[obs.EvTaskFinished] {
		t.Fatalf("trace missing lifecycle events: %v", types)
	}
	body, _ = get("/debug/trace?job=jobA&type=TaskFinished")
	var filtered struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Events) == 0 {
		t.Fatal("job+type filter returned no events")
	}
	for _, e := range filtered.Events {
		if e.Job != "jobA" || e.Type != obs.EvTaskFinished {
			t.Fatalf("filter leak: %+v", e)
		}
	}

	// /debug/skew: well-formed JSON (sumApp has no partitioned edge, so
	// an empty list is the correct answer — not an error).
	body, ct = get("/debug/skew")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/skew content type %q", ct)
	}
	var report []SkewEdge
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("/debug/skew not JSON: %v", err)
	}

	// JobHandle.Metrics: the job label is stripped and the counts match
	// the per-job series from /metrics.
	mA := hA.Metrics()
	if mA["hurricane_core_tasks_finished_total"] <= 0 {
		t.Fatalf("jobA Metrics missing finished tasks: %v", mA)
	}
	if len(hA.Trace()) == 0 {
		t.Fatal("jobA Trace empty")
	}
	for _, e := range hA.Trace() {
		if e.Job != "jobA" {
			t.Fatalf("jobA trace contains foreign event %+v", e)
		}
	}
}

// TestDisableObs: with observability off, every surface degrades to
// empty-but-valid rather than panicking.
func TestDisableObs(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.DisableObs = true
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var proc atomic.Int64
	h, err := cluster.SubmitJob(ctx, sumApp(&proc), JobConfig{Name: "q"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), h.Bag("in"), 2000)
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got := h.Metrics(); len(got) != 0 {
		t.Fatalf("disabled observer produced metrics: %v", got)
	}
	if got := h.Trace(); got != nil {
		t.Fatalf("disabled observer produced trace: %v", got)
	}
	srv := httptest.NewServer(cluster.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics on unobserved cluster: status %d", resp.StatusCode)
	}
}
