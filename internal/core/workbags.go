package core

import (
	"context"
	"fmt"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/obs"
)

// workBags is the distributed task-queuing interface (§4.1): three
// unordered bags — ready, running, done — stored on the storage nodes like
// any data bag. Compute nodes remove blueprints from the ready bag to
// create workers; they insert start events into the running bag and
// completion events into the done bag. The master never talks to compute
// nodes to schedule work: it only inserts into ready and scans done, so
// scheduling has no single point of control in the data path.
type workBags struct {
	store *bag.Store
	app   string
}

func newWorkBags(store *bag.Store, app string) *workBags {
	return &workBags{store: store, app: app}
}

func (w *workBags) readyName() string   { return w.app + "!ready" }
func (w *workBags) runningName() string { return w.app + "!running" }
func (w *workBags) doneName() string    { return w.app + "!done" }

// pushReady schedules a blueprint by inserting it into the ready bag.
func (w *workBags) pushReady(ctx context.Context, bp *Blueprint) error {
	h := w.store.Bag(w.readyName())
	if err := h.Insert(ctx, bp.Encode()); err != nil {
		return fmt.Errorf("core: scheduling %s: %w", bp.ID, err)
	}
	return nil
}

// pollReady removes one blueprint from the ready bag, returning
// bag.ErrAgain when none is available. Each call makes one sweep; task
// managers call it from their scheduling loop.
func (w *workBags) pollReady(ctx context.Context, h *bag.Bag) (*Blueprint, error) {
	c, err := h.Poll(ctx)
	if err != nil {
		return nil, err
	}
	return DecodeBlueprint(c)
}

// recordStart logs that a node began executing a blueprint.
func (w *workBags) recordStart(ctx context.Context, bp *Blueprint, node string) error {
	e := event{TaskID: bp.ID, Spec: bp.Spec, Node: node, Epoch: bp.Epoch,
		Worker: bp.Worker, Merge: bp.Kind == KindMerge}
	return w.store.Bag(w.runningName()).Insert(ctx, e.encode())
}

// recordDone logs a blueprint's completion (or failure). spans carries
// the worker's profiler phase accounting to the master (nil when span
// profiling is off — the done record then omits the field entirely).
func (w *workBags) recordDone(ctx context.Context, bp *Blueprint, node string, runErr error, spans *obs.TaskSpans) error {
	e := event{TaskID: bp.ID, Spec: bp.Spec, Node: node, Epoch: bp.Epoch,
		Worker: bp.Worker, Merge: bp.Kind == KindMerge, OK: runErr == nil, Spans: spans}
	if runErr != nil {
		e.Err = runErr.Error()
	}
	return w.store.Bag(w.doneName()).Insert(ctx, e.encode())
}

// doneScanner returns a non-consuming scanner over the done bag, so the
// master can both tail it during normal operation and replay it from the
// beginning after a master crash.
func (w *workBags) doneScanner() *bag.Scanner { return w.store.Scanner(w.doneName()) }

// runningScanner returns a non-consuming scanner over the running bag.
func (w *workBags) runningScanner() *bag.Scanner { return w.store.Scanner(w.runningName()) }

// readyScanner returns a non-consuming scanner over the ready bag
// (recovery uses it to see not-yet-claimed blueprints).
func (w *workBags) readyScanner() *bag.Scanner { return w.store.Scanner(w.readyName()) }

// drainEvents applies fn to every new event visible to the scanner.
func drainEvents(ctx context.Context, sc *bag.Scanner, fn func(*event) error) error {
	_, err := sc.Drain(ctx, func(c chunk.Chunk) error {
		e, err := decodeEvent(c)
		if err != nil {
			return err
		}
		return fn(e)
	})
	return err
}

// drainBlueprints applies fn to every new blueprint visible to the scanner.
func drainBlueprints(ctx context.Context, sc *bag.Scanner, fn func(*Blueprint) error) error {
	_, err := sc.Drain(ctx, func(c chunk.Chunk) error {
		bp, err := DecodeBlueprint(c)
		if err != nil {
			return err
		}
		return fn(bp)
	})
	return err
}
