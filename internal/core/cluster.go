package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bag"
	"repro/internal/storage"
	"repro/internal/transport"
)

// ClusterConfig describes an embedded Hurricane cluster: in-process
// storage and compute nodes connected by the in-process transport. This is
// the deployment used by the test suite, the examples, and the real-engine
// benchmarks; cmd/hurricane-storage and cmd/hurricane-run assemble the
// same pieces over TCP.
type ClusterConfig struct {
	// StorageNodes is the number of storage nodes (default 4).
	StorageNodes int
	// ComputeNodes is the number of compute nodes (default 4).
	ComputeNodes int
	// SlotsPerNode is the number of worker slots per compute node
	// (default 2).
	SlotsPerNode int
	// ChunkSize overrides the chunk size (default 64 KiB embedded; the
	// paper uses 4 MB at cluster scale).
	ChunkSize int
	// BatchFactor is the batch sampling factor b (default 10).
	BatchFactor int
	// Replication is the storage replication factor (default 1 = off).
	Replication int
	// DiskDir, if set, backs bags with files under this directory.
	DiskDir string
	// TransportLatency adds artificial latency to every storage request.
	TransportLatency time.Duration

	// Node and Master tuning.
	Node   NodeConfig
	Master MasterConfig
}

func (c *ClusterConfig) fill() {
	if c.StorageNodes <= 0 {
		c.StorageNodes = 4
	}
	if c.ComputeNodes <= 0 {
		c.ComputeNodes = 4
	}
	if c.SlotsPerNode <= 0 {
		c.SlotsPerNode = 2
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 64 << 10
	}
	if c.BatchFactor <= 0 {
		c.BatchFactor = bag.DefaultBatchFactor
	}
}

// Cluster is an embedded Hurricane cluster.
type Cluster struct {
	cfg      ClusterConfig
	inproc   *transport.InProc
	store    *bag.Store
	storages map[string]*storage.Node

	mu       sync.Mutex
	computes map[string]*ComputeNode
	master   *Master
	app      *App
	nextComp int
	nextStor int
}

// NewCluster provisions storage nodes and a bag store per the config.
// Compute nodes and the master are created by Run (or Start).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg.fill()
	c := &Cluster{
		cfg:      cfg,
		inproc:   transport.NewInProc(),
		storages: make(map[string]*storage.Node),
		computes: make(map[string]*ComputeNode),
	}
	if cfg.TransportLatency > 0 {
		c.inproc.SetLatency(cfg.TransportLatency)
	}
	names := make([]string, 0, cfg.StorageNodes)
	for i := 0; i < cfg.StorageNodes; i++ {
		name := fmt.Sprintf("storage-%d", i)
		var opts []storage.Option
		if cfg.DiskDir != "" {
			opts = append(opts, storage.WithDir(fmt.Sprintf("%s/%s", cfg.DiskDir, name)))
		}
		node := storage.NewNode(name, opts...)
		c.storages[name] = node
		c.inproc.Register(name, node)
		names = append(names, name)
	}
	c.nextStor = cfg.StorageNodes
	store, err := bag.NewStore(bag.Config{
		Nodes:       names,
		Client:      c.inproc,
		ChunkSize:   cfg.ChunkSize,
		BatchFactor: cfg.BatchFactor,
		Replication: cfg.Replication,
	})
	if err != nil {
		return nil, err
	}
	c.store = store
	return c, nil
}

// NewClusterOverStore builds a cluster whose storage tier is external —
// for example hurricane-storage servers reached over TCP. Only compute
// nodes and the application master run in this process; StorageNodes,
// Replication, ChunkSize, and BatchFactor in cfg are ignored (they are
// properties of the supplied store). Storage crash injection is
// unavailable in this mode.
func NewClusterOverStore(store *bag.Store, cfg ClusterConfig) *Cluster {
	cfg.fill()
	return &Cluster{
		cfg:      cfg,
		store:    store,
		storages: make(map[string]*storage.Node),
		computes: make(map[string]*ComputeNode),
	}
}

// Store exposes the cluster's bag store (to load source bags and read
// results).
func (c *Cluster) Store() *bag.Store { return c.store }

// Master returns the current application master (nil before Start).
func (c *Cluster) Master() *Master {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.master
}

// ---- ClusterControl ----

// KillTask implements ClusterControl.
func (c *Cluster) KillTask(spec string, epoch int) {
	c.mu.Lock()
	nodes := make([]*ComputeNode, 0, len(c.computes))
	for _, n := range c.computes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.KillTask(spec, epoch)
	}
}

// FreeSlots implements ClusterControl.
func (c *Cluster) FreeSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	free := 0
	for _, n := range c.computes {
		free += n.Slots() - n.Running()
	}
	return free
}

// TotalSlots implements ClusterControl.
func (c *Cluster) TotalSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, n := range c.computes {
		total += n.Slots()
	}
	return total
}

// ---- lifecycle ----

// Start validates the app, spins up compute nodes and the master, and
// begins execution. Source bags must be loaded and sealed beforehand.
func (c *Cluster) Start(ctx context.Context, app *App) error {
	if err := app.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.master != nil {
		return fmt.Errorf("core: cluster already running an app")
	}
	c.app = app
	c.master = NewMaster(app, c.store, c, c.cfg.Master)
	wb := c.master.WorkBags()
	for i := 0; i < c.cfg.ComputeNodes; i++ {
		name := fmt.Sprintf("compute-%d", i)
		node := NewComputeNode(name, c.cfg.SlotsPerNode, c.store, app, wb, c.master, c.cfg.Node)
		c.computes[name] = node
		node.Start(ctx)
	}
	c.nextComp = c.cfg.ComputeNodes
	c.master.Start(ctx)
	return nil
}

// Wait blocks until the running app completes and returns its error.
func (c *Cluster) Wait(ctx context.Context) error {
	c.mu.Lock()
	m := c.master
	c.mu.Unlock()
	if m == nil {
		return fmt.Errorf("core: no app running")
	}
	select {
	case <-m.Done():
		return m.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run starts the app and waits for completion.
func (c *Cluster) Run(ctx context.Context, app *App) error {
	if err := c.Start(ctx, app); err != nil {
		return err
	}
	return c.Wait(ctx)
}

// Shutdown stops all compute nodes and the master.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	nodes := make([]*ComputeNode, 0, len(c.computes))
	for _, n := range c.computes {
		nodes = append(nodes, n)
	}
	m := c.master
	c.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
	if m != nil {
		m.Stop()
	}
}

// ---- elasticity and fault injection ----

// AddComputeNode adds a compute node mid-run (§3.4).
func (c *Cluster) AddComputeNode(ctx context.Context) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.master == nil {
		return "", fmt.Errorf("core: no app running")
	}
	name := fmt.Sprintf("compute-%d", c.nextComp)
	c.nextComp++
	node := NewComputeNode(name, c.cfg.SlotsPerNode, c.store, c.app, c.master.WorkBags(), c.master, c.cfg.Node)
	c.computes[name] = node
	node.Start(ctx)
	return name, nil
}

// RemoveComputeNode gracefully removes a compute node: it stops claiming
// tasks and the call returns after its current workers complete.
func (c *Cluster) RemoveComputeNode(name string) error {
	c.mu.Lock()
	node, ok := c.computes[name]
	if ok {
		delete(c.computes, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown compute node %q", name)
	}
	node.Stop()
	return nil
}

// AddStorageNode adds a storage node mid-run (§3.4). New bag handles
// spread data over the enlarged cluster; bags already sealed are resealed
// so their empty share on the new node reports end-of-bag correctly.
func (c *Cluster) AddStorageNode() string {
	if c.inproc == nil {
		return "" // external storage tier (NewClusterOverStore)
	}
	c.mu.Lock()
	name := fmt.Sprintf("storage-%d", c.nextStor)
	c.nextStor++
	var opts []storage.Option
	if c.cfg.DiskDir != "" {
		opts = append(opts, storage.WithDir(fmt.Sprintf("%s/%s", c.cfg.DiskDir, name)))
	}
	node := storage.NewNode(name, opts...)
	c.storages[name] = node
	c.inproc.Register(name, node)
	c.store.AddNode(name)
	m := c.master
	c.mu.Unlock()
	if m != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.ResealAll(ctx); err != nil {
			m.fail(err)
		}
	}
	return name
}

// CrashComputeNode abruptly kills a compute node and notifies the master,
// which recovers the affected tasks (§4.4). Set notify=false to exercise
// heartbeat-timeout detection instead.
func (c *Cluster) CrashComputeNode(name string, notify bool) error {
	c.mu.Lock()
	node, ok := c.computes[name]
	if ok {
		delete(c.computes, name)
	}
	m := c.master
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown compute node %q", name)
	}
	node.Crash()
	if notify && m != nil {
		m.NotifyNodeFailure(name)
	}
	return nil
}

// CrashStorageNode makes a storage node unreachable. With replication
// enabled, clients fail over to backups; the master marks the node down in
// the shared store view.
func (c *Cluster) CrashStorageNode(name string) error {
	c.mu.Lock()
	_, ok := c.storages[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown storage node %q", name)
	}
	c.inproc.Crash(name)
	c.store.MarkDown(name)
	return nil
}

// CrashMaster stops the master, preserving its durable state in the work
// bags. Compute nodes keep executing tasks from the ready bag.
func (c *Cluster) CrashMaster() error {
	c.mu.Lock()
	m := c.master
	c.mu.Unlock()
	if m == nil {
		return fmt.Errorf("core: no master running")
	}
	m.Stop()
	return nil
}

// RecoverMaster starts a fresh master that rebuilds its execution-graph
// state by replaying the work bags (§4.4: "when the application master
// fails, we restart it and replay the done work bag").
func (c *Cluster) RecoverMaster(ctx context.Context) *Master {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.master
	m := NewMaster(c.app, c.store, c, c.cfg.Master)
	// Carry over node liveness. A node known dead must have its recovery
	// re-run: the previous master may have crashed between detecting the
	// failure and completing (or even starting) the recovery, and the
	// pending-recovery queue died with it. recoverNode derives the
	// affected tasks from the running work bag, so re-running it is safe
	// whether the old master finished the recovery or never began.
	if old != nil {
		old.mu.Lock()
		var dead []string
		for n, ns := range old.nodes {
			copied := *ns
			m.nodes[n] = &copied
			if ns.dead {
				dead = append(dead, n)
			}
		}
		old.mu.Unlock()
		for _, n := range dead {
			m.enqueueRecovery(n)
		}
	}
	c.master = m
	// Point compute nodes' control plane at the new master.
	for _, n := range c.computes {
		n.setMaster(m)
	}
	m.Start(ctx)
	return m
}

// ComputeNodeNames lists current compute nodes.
func (c *Cluster) ComputeNodeNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.computes))
	for n := range c.computes {
		out = append(out, n)
	}
	return out
}

// StorageNodeNames lists current storage nodes.
func (c *Cluster) StorageNodeNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.storages))
	for n := range c.storages {
		out = append(out, n)
	}
	return out
}
