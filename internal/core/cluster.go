package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bag"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/transport"
)

// ClusterConfig describes an embedded Hurricane cluster: in-process
// storage and compute nodes connected by the in-process transport. This is
// the deployment used by the test suite, the examples, and the real-engine
// benchmarks; cmd/hurricane-storage and cmd/hurricane-run assemble the
// same pieces over TCP.
type ClusterConfig struct {
	// StorageNodes is the number of storage nodes (default 4).
	StorageNodes int
	// ComputeNodes is the number of compute nodes (default 4).
	ComputeNodes int
	// SlotsPerNode is the number of worker slots per compute node
	// (default 2).
	SlotsPerNode int
	// ChunkSize overrides the chunk size (default 64 KiB embedded; the
	// paper uses 4 MB at cluster scale).
	ChunkSize int
	// BatchFactor is the batch sampling factor b (default 10).
	BatchFactor int
	// Replication is the storage replication factor (default 1 = off).
	Replication int
	// DiskDir, if set, backs bags with files under this directory.
	DiskDir string
	// TransportLatency adds artificial latency to every storage request.
	TransportLatency time.Duration

	// Node and Master tuning. Master is the default for every job;
	// JobConfig.Master overrides it per job.
	Node   NodeConfig
	Master MasterConfig

	// Sched tunes the multi-job scheduler (admission control, fair-share
	// slot leasing, preemption cadence).
	Sched sched.Config

	// Obs, when set, is the observer every layer of the cluster reports
	// into. When nil (the default) the cluster creates its own with
	// obs.DefaultTraceCap, so observability is on out of the box; set
	// DisableObs to run with no observer at all (every instrumented path
	// degrades to nil-safe no-ops).
	Obs *obs.Observer
	// DisableObs turns observability off entirely.
	DisableObs bool
	// DisableSpans turns off the task profiler (per-phase span
	// accounting on every worker, collected into JobHandle.Profile).
	// Spans are on by default and cost two or three clock reads per
	// chunk; this knob exists for overhead A/B measurements.
	DisableSpans bool
	// SlowOpThreshold is the storage-op duration at which the transport
	// and storage-node meters emit EvStorageSlowOp trace events (0 =
	// transport.DefaultSlowOp, negative disables them).
	SlowOpThreshold time.Duration
	// DisableWireTelemetry leaves the in-proc transport and storage
	// nodes unmetered (no hurricane_storage_op_* series) while keeping
	// the rest of the observer wiring. The wire-bench A/B uses it to
	// price the storage-tier meters in isolation.
	DisableWireTelemetry bool
	// SampleInterval is the continuous-telemetry cadence: the cluster's
	// sampler snapshots the metrics registry plus the captured skew
	// state into the time-series Recorder and evaluates the watchdog
	// rules on every tick. 0 selects DefaultSampleInterval; negative
	// disables the sampler (as does DisableSampler or DisableObs).
	SampleInterval time.Duration
	// DisableSampler turns the time-series recorder and watchdogs off
	// while keeping the rest of the observer. This is the overhead A/B
	// knob (HURRICANE_NOSAMPLER in the benches).
	DisableSampler bool
}

// DefaultSampleInterval is the sampler cadence when
// ClusterConfig.SampleInterval is zero. At the default recorder depth
// (obs.DefaultPointsPerSeries) it retains a bit over two minutes of
// history per series.
const DefaultSampleInterval = 250 * time.Millisecond

func (c *ClusterConfig) fill() {
	if c.StorageNodes <= 0 {
		c.StorageNodes = 4
	}
	if c.ComputeNodes <= 0 {
		c.ComputeNodes = 4
	}
	if c.SlotsPerNode <= 0 {
		c.SlotsPerNode = 2
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 64 << 10
	}
	if c.BatchFactor <= 0 {
		c.BatchFactor = bag.DefaultBatchFactor
	}
	c.Sched.Fill()
}

// Cluster is an embedded Hurricane cluster. One cluster executes any
// number of concurrent jobs (SubmitJob); compute nodes are shared, with
// worker slots arbitrated between jobs by fair-share leasing
// (internal/sched). Cluster.Run remains the single-job convenience
// path: a Submit-and-Wait with namespacing disabled.
type Cluster struct {
	cfg      ClusterConfig
	inproc   *transport.InProc
	store    *bag.Store
	storages map[string]*storage.Node

	// poolCtx bounds the shared compute pool and the scheduler loop; it
	// outlives any single job and is cancelled by Shutdown.
	poolCtx    context.Context
	poolCancel context.CancelFunc

	reg    *sched.Registry
	leases *sched.Leases
	obs    *obs.Observer // nil when ClusterConfig.DisableObs
	rec    *obs.Recorder // nil when the sampler is disabled
	watch  *obs.Watch    // ditto

	mu          sync.Mutex
	computes    map[string]*ComputeNode
	jobs        map[string]*JobHandle
	primary     *JobHandle // job driving the legacy Start/Wait/Master API
	poolStarted bool
	nextComp    int
	nextStor    int
}

func newCluster(cfg ClusterConfig) *Cluster {
	ctx, cancel := context.WithCancel(context.Background())
	o := cfg.Obs
	if o == nil && !cfg.DisableObs {
		o = obs.New(obs.DefaultTraceCap)
	}
	cfg.Obs = o
	cfg.Node.Obs = o // workers report shuffle-edge bytes/records
	cfg.Node.DisableSpans = cfg.DisableSpans
	c := &Cluster{
		cfg:        cfg,
		obs:        o,
		storages:   make(map[string]*storage.Node),
		computes:   make(map[string]*ComputeNode),
		jobs:       make(map[string]*JobHandle),
		poolCtx:    ctx,
		poolCancel: cancel,
		reg:        sched.NewRegistry(cfg.Sched),
		leases:     sched.NewLeases(cfg.Sched.DisableFairShare),
	}
	c.reg.Bind(o)
	c.leases.Bind(o)
	if o != nil && !cfg.DisableSampler && cfg.SampleInterval >= 0 {
		c.rec = obs.NewRecorder(0)
		c.rec.AddSource(obs.RegistrySource(o.Registry()))
		c.rec.AddSource(c.skewSource())
		c.watch = obs.NewWatch(o, nil)
	}
	return c
}

// NewCluster provisions storage nodes and a bag store per the config.
// Compute nodes are created when the first job is submitted.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg.fill()
	c := newCluster(cfg)
	c.inproc = transport.NewInProc()
	if cfg.TransportLatency > 0 {
		c.inproc.SetLatency(cfg.TransportLatency)
	}
	if !cfg.DisableWireTelemetry {
		c.inproc.Bind(transport.NewMeter(c.obs, "inproc", "", cfg.SlowOpThreshold))
	}
	names := make([]string, 0, cfg.StorageNodes)
	for i := 0; i < cfg.StorageNodes; i++ {
		name := fmt.Sprintf("storage-%d", i)
		var opts []storage.Option
		if cfg.DiskDir != "" {
			opts = append(opts, storage.WithDir(fmt.Sprintf("%s/%s", cfg.DiskDir, name)))
		}
		node := storage.NewNode(name, opts...)
		if !cfg.DisableWireTelemetry {
			node.Bind(c.obs, cfg.SlowOpThreshold)
		}
		c.storages[name] = node
		c.inproc.Register(name, node)
		names = append(names, name)
	}
	c.nextStor = cfg.StorageNodes
	store, err := bag.NewStore(bag.Config{
		Nodes:       names,
		Client:      c.inproc,
		ChunkSize:   cfg.ChunkSize,
		BatchFactor: cfg.BatchFactor,
		Replication: cfg.Replication,
	})
	if err != nil {
		return nil, err
	}
	c.store = store
	return c, nil
}

// NewClusterOverStore builds a cluster whose storage tier is external —
// for example hurricane-storage servers reached over TCP. Only compute
// nodes and the application masters run in this process; StorageNodes,
// Replication, ChunkSize, and BatchFactor in cfg are ignored (they are
// properties of the supplied store). Storage crash injection is
// unavailable in this mode.
func NewClusterOverStore(store *bag.Store, cfg ClusterConfig) *Cluster {
	cfg.fill()
	c := newCluster(cfg)
	c.store = store
	return c
}

// Store exposes the cluster's bag store (to load source bags and read
// results).
func (c *Cluster) Store() *bag.Store { return c.store }

// Observer exposes the cluster's observer: the metrics registry and
// event trace every layer reports into. Nil when observability was
// disabled (ClusterConfig.DisableObs).
func (c *Cluster) Observer() *obs.Observer { return c.obs }

// Recorder exposes the cluster's time-series recorder — the sampled
// history behind /debug/timeseries. Nil when the sampler is disabled
// (DisableObs, DisableSampler, or a negative SampleInterval); a nil
// *Recorder is itself a no-op, so callers may use it unconditionally.
func (c *Cluster) Recorder() *obs.Recorder { return c.rec }

// Watch exposes the cluster's watchdog (nil when the sampler is
// disabled; a nil *Watch is a no-op).
func (c *Cluster) Watch() *obs.Watch { return c.watch }

// Trace returns the cluster-wide skew-event trace, oldest first,
// across all jobs. Nil-safe: an unobserved cluster returns nil.
func (c *Cluster) Trace() []obs.Event {
	return c.obs.Tracer().Events("", "")
}

// Master returns the primary job's current application master (nil
// before Start). Jobs submitted through SubmitJob carry their own
// master; reach it through the JobHandle.
func (c *Cluster) Master() *Master {
	c.mu.Lock()
	h := c.primary
	c.mu.Unlock()
	if h == nil {
		return nil
	}
	return h.currentMaster()
}

// Primary returns the handle of the cluster's primary job — the one
// driving the Start/Run/Wait API — or nil before Start. Its Metrics and
// Trace accessors are the embedded way to read a finished run's
// mitigation story without mounting the HTTP debug surface.
func (c *Cluster) Primary() *JobHandle {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary
}

// Job returns the handle of a submitted job, or nil.
func (c *Cluster) Job(name string) *JobHandle {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[name]
}

// JobByTrace returns the handle of the job submitted with the given
// causal trace ID (JobConfig.TraceID), or nil. The debug endpoints use
// it to answer ?trace= queries from remote submitters that know only
// the ID they minted.
func (c *Cluster) JobByTrace(id string) *JobHandle {
	if id == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, h := range c.jobs {
		if h.cfg.TraceID == id {
			return h
		}
	}
	return nil
}

// ensurePoolLocked lazily provisions the shared compute pool and the
// scheduler loop. Caller holds c.mu.
func (c *Cluster) ensurePoolLocked() {
	if c.poolStarted {
		return
	}
	c.poolStarted = true
	for i := 0; i < c.cfg.ComputeNodes; i++ {
		name := fmt.Sprintf("compute-%d", i)
		node := NewComputeNode(name, c.cfg.SlotsPerNode, c.store, c.leases, c.cfg.Node)
		c.computes[name] = node
		node.Start(c.poolCtx)
	}
	c.nextComp = c.cfg.ComputeNodes
	c.leases.SetTotal(c.totalSlotsLocked())
	go c.schedLoop()
	if c.rec != nil {
		go c.samplerLoop()
	}
}

// samplerLoop drives continuous telemetry: every SampleInterval it takes
// one recorder sample (registry snapshot + captured skew shares) and
// runs the watchdog rules over it. It lives and dies with the compute
// pool — started by the first job submission, stopped by Shutdown.
func (c *Cluster) samplerLoop() {
	interval := c.cfg.SampleInterval
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.poolCtx.Done():
			return
		case <-tick.C:
			c.watch.Eval(c.rec.Sample())
		}
	}
}

// ---- ClusterControl (legacy, job-agnostic: used by masters constructed
// directly against the cluster; jobs submitted normally get a job-scoped
// jobControl instead) ----

// KillTask implements ClusterControl across all jobs.
func (c *Cluster) KillTask(spec string, epoch int) { c.killTask("", spec, epoch) }

// killTask terminates running workers of (spec, epoch) on every live
// compute node; job scopes the kill ("" = any job).
func (c *Cluster) killTask(job, spec string, epoch int) {
	c.mu.Lock()
	nodes := make([]*ComputeNode, 0, len(c.computes))
	for _, n := range c.computes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.KillTask(job, spec, epoch)
	}
}

// yieldWorker forwards a fair-share preemption request to the named node.
func (c *Cluster) yieldWorker(job, node, bpID string) bool {
	c.mu.Lock()
	n := c.computes[node]
	c.mu.Unlock()
	if n == nil {
		return false
	}
	return n.Yield(job, bpID)
}

// YieldWorker implements ClusterControl across all jobs.
func (c *Cluster) YieldWorker(node, bpID string) bool {
	return c.yieldWorker("", node, bpID)
}

// FreeSlots implements ClusterControl. Draining nodes claim nothing, so
// their slots are not counted.
func (c *Cluster) FreeSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	free := 0
	for _, n := range c.computes {
		if n.Draining() {
			continue
		}
		free += n.Slots() - n.Running()
	}
	return free
}

// TotalSlots implements ClusterControl.
func (c *Cluster) TotalSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalSlotsLocked()
}

func (c *Cluster) totalSlotsLocked() int {
	total := 0
	for _, n := range c.computes {
		if n.Draining() {
			continue
		}
		total += n.Slots()
	}
	return total
}

// ---- lifecycle ----

// Start submits the app as the cluster's primary job (no bag
// namespacing, work bags retained — the paper's single-job deployment)
// and begins execution. Source bags must be loaded and sealed
// beforehand. Unlike the single-job engine this no longer excludes other
// jobs: SubmitJob may run further jobs alongside it.
func (c *Cluster) Start(ctx context.Context, app *App) error {
	return c.StartWith(ctx, app, JobConfig{})
}

// StartWith is Start with an explicit job configuration — the query
// planner uses it to carry seed partition maps into the submission.
// Raw and Retain are forced: the primary job keeps the paper's flat
// naming and retained work bags regardless of cfg.
func (c *Cluster) StartWith(ctx context.Context, app *App, cfg JobConfig) error {
	cfg.Raw, cfg.Retain = true, true
	h, err := c.SubmitJob(ctx, app, cfg)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.primary = h
	c.mu.Unlock()
	return nil
}

// Wait blocks until the primary job completes and returns its error.
func (c *Cluster) Wait(ctx context.Context) error {
	c.mu.Lock()
	h := c.primary
	c.mu.Unlock()
	if h == nil {
		return fmt.Errorf("core: no app running")
	}
	return h.Wait(ctx)
}

// Run starts the app and waits for completion — a Submit-and-Wait over
// the multi-job scheduler.
func (c *Cluster) Run(ctx context.Context, app *App) error {
	if err := c.Start(ctx, app); err != nil {
		return err
	}
	return c.Wait(ctx)
}

// Shutdown stops every job's master, all compute nodes, and the
// scheduler. Workers still running are killed — a job that has not
// completed by Shutdown never will, so draining could wait forever on a
// worker whose input never arrives. Queued jobs that never started are
// failed.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	nodes := make([]*ComputeNode, 0, len(c.computes))
	for _, n := range c.computes {
		nodes = append(nodes, n)
	}
	var masters []*Master
	var queued []*JobHandle
	for _, h := range c.jobs {
		if m := h.currentMaster(); m != nil {
			masters = append(masters, m)
		} else {
			queued = append(queued, h)
		}
	}
	c.mu.Unlock()
	for _, m := range masters {
		m.Stop()
	}
	for _, n := range nodes {
		n.Crash()
	}
	for _, h := range queued {
		h.finish(fmt.Errorf("core: cluster shut down before job started"))
	}
	c.poolCancel()
}

// PoolDone returns a channel closed when the cluster has been shut down
// (compute pool and scheduler cancelled). Long-running drivers layered on
// the cluster — the streaming subsystem's ingestion pump, window
// watchers — select on it so a Shutdown issued mid-stream unblocks them
// instead of deadlocking: a stopped master never closes its job's Done
// channel (stop is deliberate; a successor could still replay the work
// bags), so waiting on a job alone would hang forever.
func (c *Cluster) PoolDone() <-chan struct{} { return c.poolCtx.Done() }

// ---- elasticity and fault injection ----

// AddComputeNode adds a compute node mid-run (§3.4); it joins the shared
// pool and serves every running job.
func (c *Cluster) AddComputeNode(ctx context.Context) (string, error) {
	_ = ctx // the pool context governs node lifetime
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.poolStarted {
		return "", fmt.Errorf("core: no app running")
	}
	name := fmt.Sprintf("compute-%d", c.nextComp)
	c.nextComp++
	node := NewComputeNode(name, c.cfg.SlotsPerNode, c.store, c.leases, c.cfg.Node)
	c.computes[name] = node
	for _, h := range c.jobs {
		h.mu.Lock()
		if h.state == sched.StateRunning && h.master != nil {
			node.Attach(h.id, h.app, h.master.WorkBags(), h.master)
		}
		h.mu.Unlock()
	}
	node.Start(c.poolCtx)
	c.leases.SetTotal(c.totalSlotsLocked())
	return name, nil
}

// RemoveComputeNode gracefully removes a compute node: it stops claiming
// tasks and the call returns after its current workers complete. The
// node leaves the slot accounting immediately but stays visible to
// recovery kill sweeps until its last worker has stopped — a failure
// recovery racing the removal must still be able to kill the draining
// node's stale-epoch workers.
func (c *Cluster) RemoveComputeNode(name string) error {
	c.mu.Lock()
	node, ok := c.computes[name]
	if ok {
		node.BeginDrain()
		c.leases.SetTotal(c.totalSlotsLocked())
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown compute node %q", name)
	}
	node.Stop()
	c.mu.Lock()
	delete(c.computes, name)
	c.mu.Unlock()
	return nil
}

// AddStorageNode adds a storage node mid-run (§3.4). New bag handles
// spread data over the enlarged cluster; bags already sealed are resealed
// so their empty share on the new node reports end-of-bag correctly.
func (c *Cluster) AddStorageNode() string {
	if c.inproc == nil {
		return "" // external storage tier (NewClusterOverStore)
	}
	c.mu.Lock()
	name := fmt.Sprintf("storage-%d", c.nextStor)
	c.nextStor++
	var opts []storage.Option
	if c.cfg.DiskDir != "" {
		opts = append(opts, storage.WithDir(fmt.Sprintf("%s/%s", c.cfg.DiskDir, name)))
	}
	node := storage.NewNode(name, opts...)
	if !c.cfg.DisableWireTelemetry {
		node.Bind(c.obs, c.cfg.SlowOpThreshold)
	}
	c.storages[name] = node
	c.inproc.Register(name, node)
	c.store.AddNode(name)
	masters := c.runningMastersLocked()
	c.mu.Unlock()
	for _, m := range masters {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := m.ResealAll(ctx)
		cancel()
		if err != nil {
			m.fail(err)
		}
	}
	return name
}

// runningMastersLocked snapshots every running job's master. Caller
// holds c.mu.
func (c *Cluster) runningMastersLocked() []*Master {
	var out []*Master
	for _, h := range c.jobs {
		h.mu.Lock()
		if h.state == sched.StateRunning && h.master != nil {
			out = append(out, h.master)
		}
		h.mu.Unlock()
	}
	return out
}

// CrashComputeNode abruptly kills a compute node and notifies every
// running job's master, which recover their affected tasks (§4.4). Set
// notify=false to exercise heartbeat-timeout detection instead.
func (c *Cluster) CrashComputeNode(name string, notify bool) error {
	c.mu.Lock()
	node, ok := c.computes[name]
	if ok {
		delete(c.computes, name)
		c.leases.SetTotal(c.totalSlotsLocked())
	}
	var masters []*Master
	if notify {
		masters = c.runningMastersLocked()
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown compute node %q", name)
	}
	node.Crash()
	for _, m := range masters {
		m.NotifyNodeFailure(name)
	}
	return nil
}

// CrashStorageNode makes a storage node unreachable. With replication
// enabled, clients fail over to backups; the master marks the node down in
// the shared store view.
func (c *Cluster) CrashStorageNode(name string) error {
	c.mu.Lock()
	_, ok := c.storages[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown storage node %q", name)
	}
	c.inproc.Crash(name)
	c.store.MarkDown(name)
	return nil
}

// CrashMaster stops the primary job's master, preserving its durable
// state in the work bags. Compute nodes keep executing tasks from the
// ready bag.
func (c *Cluster) CrashMaster() error {
	m := c.Master()
	if m == nil {
		return fmt.Errorf("core: no master running")
	}
	m.Stop()
	return nil
}

// RecoverMaster starts a fresh master for the primary job that rebuilds
// its execution-graph state by replaying the work bags (§4.4: "when the
// application master fails, we restart it and replay the done work
// bag").
func (c *Cluster) RecoverMaster(ctx context.Context) *Master {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.primary
	if h == nil {
		return nil
	}
	mcfg := c.cfg.Master
	if h.cfg.Master != nil {
		mcfg = *h.cfg.Master
	}
	mcfg.Job = h.id
	mcfg.Obs = c.obs
	mcfg.TraceID = h.cfg.TraceID
	m := NewMaster(h.app, c.store, &jobControl{c: c, job: h.id}, mcfg)
	h.mu.Lock()
	old := h.master
	h.mu.Unlock()
	// Carry over node liveness. A node known dead must have its recovery
	// re-run: the previous master may have crashed between detecting the
	// failure and completing (or even starting) the recovery, and the
	// pending-recovery queue died with it. recoverNode derives the
	// affected tasks from the running work bag, so re-running it is safe
	// whether the old master finished the recovery or never began.
	if old != nil {
		old.mu.Lock()
		var dead []string
		for n, ns := range old.nodes {
			copied := *ns
			m.nodes[n] = &copied
			if ns.dead {
				dead = append(dead, n)
			}
		}
		old.mu.Unlock()
		for _, n := range dead {
			m.enqueueRecovery(n)
		}
	}
	h.mu.Lock()
	h.master = m
	oldSwap := h.swap
	h.swap = make(chan struct{})
	h.mu.Unlock()
	close(oldSwap) // wake the supervisor onto the new master
	// Point compute nodes' control plane at the new master.
	for _, n := range c.computes {
		n.setMaster(h.id, m)
	}
	m.Start(ctx)
	return m
}

// ComputeNodeNames lists current compute nodes.
func (c *Cluster) ComputeNodeNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.computes))
	for n := range c.computes {
		out = append(out, n)
	}
	return out
}

// StorageNodeNames lists current storage nodes.
func (c *Cluster) StorageNodeNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.storages))
	for n := range c.storages {
		out = append(out, n)
	}
	return out
}
