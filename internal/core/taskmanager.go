package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/bag"
	"repro/internal/obs"
	"repro/internal/sched"
)

// masterAPI is the control-plane interface task managers use to reach an
// application master. In the embedded engine this is the in-process
// master; the data plane (work bags, data bags) goes through storage
// regardless.
type masterAPI interface {
	// overload signals that the node is overloaded while running bp and
	// would like the task cloned (§4.2: "each compute node can signal the
	// application master that it is overloaded").
	overload(node string, bp *Blueprint, busyFrac float64)
	// heartbeat reports node liveness and current load.
	heartbeat(node string, running, slots int)
	// nudge wakes the master's event-driven control loop after the node
	// inserted a work-bag record (task started or completed), so the
	// master re-scans immediately instead of on its fallback timer.
	nudge()
	// staleBlueprint reports whether the blueprint's epoch predates the
	// master's current epoch for the task — a leftover of a failure
	// recovery that must not run (its inputs were rewound and its outputs
	// discarded at a newer epoch). Nodes check at claim time and again
	// after registering the worker, so a recovery sweeping between the
	// two checks can never leave a stale worker running.
	staleBlueprint(bp *Blueprint) bool
}

// binding connects a compute node to one job: the job's application
// graph, work bags, and (repointable, for master recovery) master.
type binding struct {
	job   string
	app   *App
	wb    *workBags
	ready *bag.Bag

	mu     sync.RWMutex
	master masterAPI
}

func (b *binding) getMaster() masterAPI {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.master
}

func (b *binding) setMaster(m masterAPI) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.master = m
}

// workerEntry tracks one running worker and the job binding it belongs
// to (completion reports and overload signals go to the owning master).
type workerEntry struct {
	w *worker
	b *binding
}

// ComputeNode is a Hurricane compute node: it runs a task manager that
// removes blueprints from the ready work bags of every job bound to it
// and executes them on local worker slots (§3.1). With several jobs
// bound, claims are gated by the scheduler's slot leases: each claimed
// slot is billed to the owning job, and claim order follows fair-share
// priority so freed slots flow to the job furthest below its share.
type ComputeNode struct {
	name   string
	slots  int
	store  *bag.Store
	cfg    NodeConfig
	leases *sched.Leases // nil: no lease gating (direct construction)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	bindings map[string]*binding
	rot      int                     // rotation offset for unarbitrated claim order
	workers  map[string]*workerEntry // keyed by job + "/" + blueprint ID
	crashed  bool
	draining bool
}

// NodeConfig tunes a compute node's scheduling and monitoring loops.
type NodeConfig struct {
	// PollInterval is the delay between ready-bag sweeps when idle.
	PollInterval time.Duration
	// MonitorInterval is how often worker load is sampled. The paper
	// sends clone messages at least 2 seconds apart; tests shrink this.
	MonitorInterval time.Duration
	// OverloadThreshold is the busy fraction above which a worker is
	// considered CPU-bound and a clone request is sent.
	OverloadThreshold float64
	// HeartbeatInterval is how often the node heartbeats the master.
	HeartbeatInterval time.Duration
	// Obs is the cluster observer workers report shuffle-edge byte and
	// record counts into; nil disables worker-side metrics.
	Obs *obs.Observer
	// DisableSpans turns off the task profiler's per-phase span
	// accounting (on by default; see ClusterConfig.DisableSpans).
	DisableSpans bool
}

func (c *NodeConfig) fill() {
	if c.PollInterval <= 0 {
		c.PollInterval = 5 * time.Millisecond
	}
	if c.MonitorInterval <= 0 {
		c.MonitorInterval = 2 * time.Second // paper default
	}
	if c.OverloadThreshold <= 0 {
		c.OverloadThreshold = 0.75
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.MonitorInterval / 2
		if c.HeartbeatInterval <= 0 {
			c.HeartbeatInterval = time.Second
		}
	}
}

// NewComputeNode creates a compute node with the given number of worker
// slots. Jobs are connected with Attach; call Start to begin executing
// tasks. leases, when non-nil, gates claims by the scheduler's
// fair-share slot leasing.
func NewComputeNode(name string, slots int, store *bag.Store, leases *sched.Leases, cfg NodeConfig) *ComputeNode {
	cfg.fill()
	return &ComputeNode{
		name:     name,
		slots:    slots,
		store:    store,
		cfg:      cfg,
		leases:   leases,
		bindings: make(map[string]*binding),
		workers:  make(map[string]*workerEntry),
	}
}

// Attach binds a job to the node: its ready bag joins the claim rotation
// and its master receives this node's heartbeats and overload signals.
func (n *ComputeNode) Attach(job string, app *App, wb *workBags, master masterAPI) {
	b := &binding{job: job, app: app, wb: wb, ready: n.store.Bag(wb.readyName()), master: master}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.bindings[job] = b
}

// Detach unbinds a completed job. Workers of the job still running are
// left to finish; their completion reports go to the captured binding.
func (n *ComputeNode) Detach(job string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.bindings, job)
}

// setMaster repoints a job's control plane at a new master (master
// recovery).
func (n *ComputeNode) setMaster(job string, m masterAPI) {
	n.mu.Lock()
	b := n.bindings[job]
	n.mu.Unlock()
	if b != nil {
		b.setMaster(m)
	}
}

// Name returns the node name.
func (n *ComputeNode) Name() string { return n.name }

// Start launches the node's scheduling, monitoring, and heartbeat loops.
func (n *ComputeNode) Start(parent context.Context) {
	n.ctx, n.cancel = context.WithCancel(parent)
	n.wg.Add(2)
	go n.scheduleLoop()
	go n.monitorLoop()
}

// Stop terminates the node gracefully: it stops claiming tasks and
// returns once its running workers have completed (§3.4: "a compute node
// is removed by stopping its task manager after its current workers have
// completed").
func (n *ComputeNode) Stop() {
	n.BeginDrain()
	for {
		n.mu.Lock()
		idle := len(n.workers) == 0
		n.mu.Unlock()
		if idle {
			break
		}
		time.Sleep(n.cfg.PollInterval)
	}
	if n.cancel != nil {
		n.cancel()
	}
	n.wg.Wait()
}

// BeginDrain marks the node draining — it claims no further blueprints —
// without waiting for running workers. The cluster marks a node draining
// before removing it so slot accounting excludes it immediately, while
// the node stays visible to recovery kill sweeps until fully stopped.
func (n *ComputeNode) BeginDrain() {
	n.mu.Lock()
	n.draining = true
	n.mu.Unlock()
}

// Draining reports whether the node has stopped claiming blueprints.
func (n *ComputeNode) Draining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.draining
}

// Crash simulates a compute-node failure: all workers are killed
// immediately and the node stops heartbeating, so the masters will
// detect the failure and restart the affected tasks.
func (n *ComputeNode) Crash() {
	n.mu.Lock()
	n.crashed = true
	workers := make([]*workerEntry, 0, len(n.workers))
	for _, we := range n.workers {
		workers = append(workers, we)
	}
	n.mu.Unlock()
	for _, we := range workers {
		we.w.kill()
	}
	if n.cancel != nil {
		n.cancel()
	}
	n.wg.Wait()
}

// Running reports the number of workers currently executing.
func (n *ComputeNode) Running() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.workers)
}

// Slots returns the node's worker slot count.
func (n *ComputeNode) Slots() int { return n.slots }

// KillTask kills local workers of the given job whose blueprint matches
// the given spec and epoch, waiting until they have fully stopped. A
// master invokes this during failure recovery to terminate all running
// clones of a failed task (§4.4); the wait guarantees no straggling
// worker touches the task's bags after the master starts scrubbing them.
// Task names are only unique within a job, so the kill is job-scoped
// ("" matches any job — the legacy single-job control path).
func (n *ComputeNode) KillTask(job, spec string, epoch int) {
	n.mu.Lock()
	var victims []*worker
	for _, we := range n.workers {
		if (job == "" || we.b.job == job) && we.w.bp.Spec == spec && we.w.bp.Epoch == epoch {
			victims = append(victims, we.w)
		}
	}
	n.mu.Unlock()
	for _, w := range victims {
		w.kill()
	}
	for _, w := range victims {
		<-w.done
	}
}

// KillJob kills every local worker of the named job, waiting until they
// have fully stopped. The cluster reaps a failed job's workers this way
// — e.g. after its submission context was cancelled — so their slots
// return to the pool even though no recovery will ever reschedule them.
func (n *ComputeNode) KillJob(job string) {
	n.mu.Lock()
	var victims []*worker
	for _, we := range n.workers {
		if we.b.job == job {
			victims = append(victims, we.w)
		}
	}
	n.mu.Unlock()
	for _, w := range victims {
		w.kill()
	}
	for _, w := range victims {
		<-w.done
	}
}

// Yield asks the identified worker to stop consuming at its next chunk
// boundary and complete normally (fair-share clone preemption). It
// reports whether the worker was found.
func (n *ComputeNode) Yield(job, bpID string) bool {
	n.mu.Lock()
	we := n.workers[job+"/"+bpID]
	if we == nil && job == "" {
		for _, cand := range n.workers {
			if cand.w.bp.ID == bpID {
				we = cand
				break
			}
		}
	}
	n.mu.Unlock()
	if we == nil {
		return false
	}
	we.w.tc.requestYield()
	return true
}

// pickBindings snapshots the node's bindings in claim order: fair-share
// priority (furthest below share first) when leasing is active, a
// per-sweep rotation otherwise so no job is structurally favored.
func (n *ComputeNode) pickBindings() []*binding {
	n.mu.Lock()
	ids := make([]string, 0, len(n.bindings))
	for id := range n.bindings {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rot := n.rot
	n.rot++
	bs := make([]*binding, 0, len(ids))
	if len(ids) > 0 {
		if n.leases != nil && n.leases.FairShare() {
			prio := n.leases.Priorities(ids)
			sort.SliceStable(ids, func(a, b int) bool {
				return prio[ids[a]] < prio[ids[b]]
			})
			for _, id := range ids {
				bs = append(bs, n.bindings[id])
			}
		} else {
			for i := range ids {
				bs = append(bs, n.bindings[ids[(i+rot)%len(ids)]])
			}
		}
	}
	n.mu.Unlock()
	return bs
}

func (n *ComputeNode) scheduleLoop() {
	defer n.wg.Done()
	for {
		if n.ctx.Err() != nil {
			return
		}
		n.mu.Lock()
		free := n.slots - len(n.workers)
		if n.draining {
			free = 0 // no new claims while draining
		}
		n.mu.Unlock()
		if free <= 0 {
			if !sleepCtx(n.ctx, n.cfg.PollInterval) {
				return
			}
			continue
		}
		claimed := false
		for _, b := range n.pickBindings() {
			if n.leases != nil && !n.leases.Acquire(b.job) {
				continue // over lease with a starved neighbor
			}
			bp, err := b.wb.pollReady(n.ctx, b.ready)
			if err != nil {
				// ErrAgain: nothing ready. ErrEmpty cannot normally happen
				// (the ready bag is never sealed); treat both as idle.
				if n.leases != nil {
					n.leases.Release(b.job)
				}
				continue
			}
			n.startWorker(b, bp)
			claimed = true
			break
		}
		if !claimed {
			if !sleepCtx(n.ctx, n.cfg.PollInterval) {
				return
			}
		}
	}
}

// startWorker runs a claimed blueprint. It owns the job's lease token:
// every exit path either hands it to the worker's completion goroutine
// or releases it.
func (n *ComputeNode) startWorker(b *binding, bp *Blueprint) {
	release := func() {
		if n.leases != nil {
			n.leases.Release(b.job)
		}
	}
	master := b.getMaster()
	if master.staleBlueprint(bp) {
		release()
		return // abandoned epoch: recovery already rescheduled the task
	}
	// Record the start before executing so the master can find the task
	// during failure recovery.
	if err := b.wb.recordStart(n.ctx, bp, n.name); err != nil {
		release()
		return // node is shutting down or storage unreachable
	}
	// Register the gated worker before it consumes anything, then
	// re-validate: (a) the epoch — either a concurrent recovery's
	// KillTask sees the registered worker, or the recovery finished
	// first and the re-check observes the bumped epoch; (b) the binding
	// — a failed job's finalize detaches the binding before its KillJob
	// sweep, so either the sweep sees the registered worker or this
	// re-check observes the detach. Both orders kill the worker before
	// it touches the job's bags.
	w := runWorkerGated(n.ctx, bp, n.store, b.app, n.cfg.Obs, b.job)
	w.tc.spanOff = n.cfg.DisableSpans // before release: the gate orders this write
	key := b.job + "/" + bp.ID
	n.mu.Lock()
	n.workers[key] = &workerEntry{w: w, b: b}
	stillBound := n.bindings[b.job] == b
	n.mu.Unlock()
	if master.staleBlueprint(bp) || !stillBound {
		w.kill()
		n.mu.Lock()
		delete(n.workers, key)
		n.mu.Unlock()
		release()
		return
	}
	w.release()
	master.nudge()

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		<-w.done
		release()
		n.mu.Lock()
		delete(n.workers, key)
		crashed := n.crashed
		n.mu.Unlock()
		if w.killed.Load() || crashed {
			// Killed workers report nothing: the master already decided
			// their fate.
			return
		}
		// Use a fresh context: the node context may be cancelled by a
		// graceful Stop racing with completion.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		b.wb.recordDone(ctx, bp, n.name, w.err, w.tc.spanSnapshot())
		b.getMaster().nudge()
	}()
}

func (n *ComputeNode) monitorLoop() {
	defer n.wg.Done()
	for {
		if !sleepCtx(n.ctx, n.cfg.HeartbeatInterval) {
			return
		}
		n.mu.Lock()
		running := len(n.workers)
		snapshot := make([]*workerEntry, 0, running)
		for _, we := range n.workers {
			snapshot = append(snapshot, we)
		}
		masters := make([]masterAPI, 0, len(n.bindings))
		for _, b := range n.bindings {
			masters = append(masters, b.getMaster())
		}
		n.mu.Unlock()
		for _, m := range masters {
			m.heartbeat(n.name, running, n.slots)
		}

		// Overload detection: a worker that spent most of the interval
		// computing (rather than waiting on storage) is CPU-bound; ask
		// the owning job's master to clone its task. Clone messages are
		// rate-limited by the master per task.
		for _, we := range snapshot {
			busy := we.w.tc.loadSnapshot()
			if busy >= n.cfg.OverloadThreshold {
				we.b.getMaster().overload(n.name, we.w.bp, busy)
			}
		}
	}
}

// sleepCtx sleeps for d, returning false if the context was cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
