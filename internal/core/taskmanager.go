package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/bag"
)

// masterAPI is the control-plane interface task managers use to reach the
// application master. In the embedded engine this is the in-process
// master; the data plane (work bags, data bags) goes through storage
// regardless.
type masterAPI interface {
	// overload signals that the node is overloaded while running bp and
	// would like the task cloned (§4.2: "each compute node can signal the
	// application master that it is overloaded").
	overload(node string, bp *Blueprint, busyFrac float64)
	// heartbeat reports node liveness and current load.
	heartbeat(node string, running, slots int)
	// nudge wakes the master's event-driven control loop after the node
	// inserted a work-bag record (task started or completed), so the
	// master re-scans immediately instead of on its fallback timer.
	nudge()
	// staleBlueprint reports whether the blueprint's epoch predates the
	// master's current epoch for the task — a leftover of a failure
	// recovery that must not run (its inputs were rewound and its outputs
	// discarded at a newer epoch). Nodes check at claim time and again
	// after registering the worker, so a recovery sweeping between the
	// two checks can never leave a stale worker running.
	staleBlueprint(bp *Blueprint) bool
}

// ComputeNode is a Hurricane compute node: it runs a task manager that
// removes blueprints from the ready work bag and executes them on local
// worker slots (§3.1).
type ComputeNode struct {
	name  string
	slots int
	store *bag.Store
	app   *App
	wb    *workBags
	cfg   NodeConfig

	masterMu sync.RWMutex
	master   masterAPI

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	workers  map[string]*worker // keyed by blueprint ID
	crashed  bool
	draining bool
}

// NodeConfig tunes a compute node's scheduling and monitoring loops.
type NodeConfig struct {
	// PollInterval is the delay between ready-bag sweeps when idle.
	PollInterval time.Duration
	// MonitorInterval is how often worker load is sampled. The paper
	// sends clone messages at least 2 seconds apart; tests shrink this.
	MonitorInterval time.Duration
	// OverloadThreshold is the busy fraction above which a worker is
	// considered CPU-bound and a clone request is sent.
	OverloadThreshold float64
	// HeartbeatInterval is how often the node heartbeats the master.
	HeartbeatInterval time.Duration
}

func (c *NodeConfig) fill() {
	if c.PollInterval <= 0 {
		c.PollInterval = 5 * time.Millisecond
	}
	if c.MonitorInterval <= 0 {
		c.MonitorInterval = 2 * time.Second // paper default
	}
	if c.OverloadThreshold <= 0 {
		c.OverloadThreshold = 0.75
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.MonitorInterval / 2
		if c.HeartbeatInterval <= 0 {
			c.HeartbeatInterval = time.Second
		}
	}
}

// NewComputeNode creates a compute node with the given number of worker
// slots. Call Start to begin executing tasks.
func NewComputeNode(name string, slots int, store *bag.Store, app *App, wb *workBags, master masterAPI, cfg NodeConfig) *ComputeNode {
	cfg.fill()
	n := &ComputeNode{
		name:    name,
		slots:   slots,
		store:   store,
		app:     app,
		wb:      wb,
		cfg:     cfg,
		workers: make(map[string]*worker),
	}
	n.master = master
	return n
}

// setMaster repoints the node's control plane at a new master (master
// recovery).
func (n *ComputeNode) setMaster(m masterAPI) {
	n.masterMu.Lock()
	defer n.masterMu.Unlock()
	n.master = m
}

func (n *ComputeNode) getMaster() masterAPI {
	n.masterMu.RLock()
	defer n.masterMu.RUnlock()
	return n.master
}

// Name returns the node name.
func (n *ComputeNode) Name() string { return n.name }

// Start launches the node's scheduling, monitoring, and heartbeat loops.
func (n *ComputeNode) Start(parent context.Context) {
	n.ctx, n.cancel = context.WithCancel(parent)
	n.wg.Add(2)
	go n.scheduleLoop()
	go n.monitorLoop()
}

// Stop terminates the node gracefully: it stops claiming tasks and
// returns once its running workers have completed (§3.4: "a compute node
// is removed by stopping its task manager after its current workers have
// completed").
func (n *ComputeNode) Stop() {
	n.mu.Lock()
	n.draining = true
	n.mu.Unlock()
	for {
		n.mu.Lock()
		idle := len(n.workers) == 0
		n.mu.Unlock()
		if idle {
			break
		}
		time.Sleep(n.cfg.PollInterval)
	}
	if n.cancel != nil {
		n.cancel()
	}
	n.wg.Wait()
}

// Crash simulates a compute-node failure: all workers are killed
// immediately and the node stops heartbeating, so the master will detect
// the failure and restart the affected tasks.
func (n *ComputeNode) Crash() {
	n.mu.Lock()
	n.crashed = true
	workers := make([]*worker, 0, len(n.workers))
	for _, w := range n.workers {
		workers = append(workers, w)
	}
	n.mu.Unlock()
	for _, w := range workers {
		w.kill()
	}
	if n.cancel != nil {
		n.cancel()
	}
	n.wg.Wait()
}

// Running reports the number of workers currently executing.
func (n *ComputeNode) Running() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.workers)
}

// Slots returns the node's worker slot count.
func (n *ComputeNode) Slots() int { return n.slots }

// KillTask kills local workers whose blueprint matches the given spec and
// epoch, waiting until they have fully stopped. The master invokes this
// during failure recovery to terminate all running clones of a failed task
// (§4.4); the wait guarantees no straggling worker touches the task's bags
// after the master starts scrubbing them.
func (n *ComputeNode) KillTask(spec string, epoch int) {
	n.mu.Lock()
	var victims []*worker
	for _, w := range n.workers {
		if w.bp.Spec == spec && w.bp.Epoch == epoch {
			victims = append(victims, w)
		}
	}
	n.mu.Unlock()
	for _, w := range victims {
		w.kill()
	}
	for _, w := range victims {
		<-w.done
	}
}

func (n *ComputeNode) scheduleLoop() {
	defer n.wg.Done()
	ready := n.store.Bag(n.wb.readyName())
	for {
		if n.ctx.Err() != nil {
			return
		}
		n.mu.Lock()
		free := n.slots - len(n.workers)
		if n.draining {
			free = 0 // no new claims while draining
		}
		n.mu.Unlock()
		if free <= 0 {
			if !sleepCtx(n.ctx, n.cfg.PollInterval) {
				return
			}
			continue
		}
		bp, err := n.wb.pollReady(n.ctx, ready)
		if err != nil {
			// ErrAgain: nothing ready. ErrEmpty cannot normally happen
			// (the ready bag is never sealed); treat both as idle.
			if !sleepCtx(n.ctx, n.cfg.PollInterval) {
				return
			}
			continue
		}
		n.startWorker(bp)
	}
}

func (n *ComputeNode) startWorker(bp *Blueprint) {
	master := n.getMaster()
	if master.staleBlueprint(bp) {
		return // abandoned epoch: recovery already rescheduled the task
	}
	// Record the start before executing so the master can find the task
	// during failure recovery.
	if err := n.wb.recordStart(n.ctx, bp, n.name); err != nil {
		return // node is shutting down or storage unreachable
	}
	// Register the gated worker before it consumes anything, then
	// re-validate the epoch: either a concurrent recovery's KillTask sees
	// the registered worker, or the recovery finished first and the
	// re-check observes the bumped epoch. Both orders kill the worker
	// before it touches the rewound bags.
	w := runWorkerGated(n.ctx, bp, n.store, n.app)
	n.mu.Lock()
	n.workers[bp.ID] = w
	n.mu.Unlock()
	if master.staleBlueprint(bp) {
		w.kill()
		n.mu.Lock()
		delete(n.workers, bp.ID)
		n.mu.Unlock()
		return
	}
	w.release()
	master.nudge()

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		<-w.done
		n.mu.Lock()
		delete(n.workers, bp.ID)
		crashed := n.crashed
		n.mu.Unlock()
		if w.killed.Load() || crashed {
			// Killed workers report nothing: the master already decided
			// their fate.
			return
		}
		// Use a fresh context: the node context may be cancelled by a
		// graceful Stop racing with completion.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		n.wb.recordDone(ctx, bp, n.name, w.err)
		n.getMaster().nudge()
	}()
}

func (n *ComputeNode) monitorLoop() {
	defer n.wg.Done()
	for {
		if !sleepCtx(n.ctx, n.cfg.HeartbeatInterval) {
			return
		}
		n.mu.Lock()
		running := len(n.workers)
		snapshot := make([]*worker, 0, running)
		for _, w := range n.workers {
			snapshot = append(snapshot, w)
		}
		n.mu.Unlock()
		master := n.getMaster()
		master.heartbeat(n.name, running, n.slots)

		// Overload detection: a worker that spent most of the interval
		// computing (rather than waiting on storage) is CPU-bound; ask
		// the master to clone its task. Clone messages are rate-limited
		// by the master per task.
		for _, w := range snapshot {
			busy := w.tc.loadSnapshot()
			if busy >= n.cfg.OverloadThreshold {
				master.overload(n.name, w.bp, busy)
			}
		}
	}
}

// sleepCtx sleeps for d, returning false if the context was cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
