package core

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// Profile assembles the job's measured execution profile from the phase
// spans carried on done-bag events: per-stage aggregation, the critical
// path through the task DAG, and per-edge skew attribution correlated
// with the mitigation decisions the trace recorded. It is valid at any
// point in the job's life — stages that have not finished simply have no
// spans yet — and is complete once the job is done.
func (m *Master) Profile() *obs.Profile {
	m.mu.Lock()
	spans := make([]obs.TaskSpans, len(m.spans))
	copy(spans, m.spans)
	start, end := m.profStart, m.profEnd
	m.mu.Unlock()

	var wall int64
	if !start.IsZero() {
		if end.IsZero() {
			wall = time.Since(start).Nanoseconds()
		} else {
			wall = end.Sub(start).Nanoseconds()
		}
	}

	p := obs.BuildProfile(m.cfg.Job, wall, spans, m.stageDeps())
	p.TraceID = m.cfg.TraceID
	m.attributeEdgeSkew(p)
	return p
}

// stageDeps maps each task spec to its upstream specs — the producers of
// its consumed and scanned bags. Spans are keyed by spec name, so the
// declared graph (not the per-worker physical partition bags) is the
// right join.
func (m *Master) stageDeps() map[string][]string {
	deps := make(map[string][]string, len(m.tasks))
	for _, name := range m.app.Tasks() {
		spec := m.app.Task(name)
		seen := map[string]bool{}
		bags := make([]string, 0, len(spec.Inputs)+len(spec.ScanInputs))
		bags = append(bags, spec.Inputs...)
		bags = append(bags, spec.ScanInputs...)
		for _, in := range bags {
			for _, prod := range m.app.Producers(in) {
				if !seen[prod] {
					seen[prod] = true
					deps[name] = append(deps[name], prod)
				}
			}
		}
	}
	return deps
}

// attributeEdgeSkew fills p.Edges: for every partitioned shuffle edge,
// the consumer stage's task-time spread (p50 vs max worker wall, the
// slowest worker's share of summed stage time) joined with the
// mitigation actions the trace recorded — splits and isolations keyed by
// edge name, clones keyed by the consumer task. RecoveredNS estimates
// the time cloning bought back as the working time (read + compute +
// shuffle) absorbed by the consumer's clone workers; clones always take
// the highest worker indices, so the trace's clone count identifies
// them.
func (m *Master) attributeEdgeSkew(p *obs.Profile) {
	if len(m.edges) == 0 {
		return
	}
	tr := m.obs.o.Tracer()
	for _, name := range edgeNames(m.edges) {
		edge := m.edges[name]
		es := obs.EdgeSkew{Edge: name, Consumer: edge.consumer}
		es.Splits = countEvents(tr, m.cfg.Job, obs.EvPartitionSplit, name)
		es.Isolations = countEvents(tr, m.cfg.Job, obs.EvKeyIsolated, name)
		if edge.consumer != "" {
			es.Clones = countEvents(tr, m.cfg.Job, obs.EvTaskCloned, edge.consumer)
		}
		if st := p.Stage(edge.consumer); st != nil {
			es.P50TaskNS = st.P50TaskNS
			es.MaxTaskNS = st.MaxTaskNS
			var sum int64
			workers := make([]*obs.TaskSpans, 0, len(st.Tasks))
			for i := range st.Tasks {
				t := &st.Tasks[i]
				if t.Merge {
					continue
				}
				sum += t.WallNS()
				workers = append(workers, t)
			}
			if sum > 0 {
				es.SlowestShare = float64(st.MaxTaskNS) / float64(sum)
			}
			sort.Slice(workers, func(a, b int) bool { return workers[a].Worker > workers[b].Worker })
			for i := 0; i < es.Clones && i < len(workers); i++ {
				t := workers[i]
				es.RecoveredNS += t.ReadNS + t.ComputeNS + t.ShuffleNS
			}
		}
		p.Edges = append(p.Edges, es)
	}
}

// countEvents counts retained trace events of one type for one subject.
// Lifecycle shedding can undercount on very long jobs; decision events
// are evicted last, so the mitigation counts here are the most durable
// part of the trace.
func countEvents(tr *obs.Trace, job string, typ obs.EventType, subject string) int {
	n := 0
	for _, e := range tr.Events(job, typ) {
		if e.Subject == subject {
			n++
		}
	}
	return n
}
