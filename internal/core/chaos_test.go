package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestMasterChaosRecovery repeatedly crashes and recovers the master at
// arbitrary points during a clone-heavy job (worker completions, merge
// scheduling, rename adoption may all be mid-flight). Every recovered
// master rebuilds from the work bags; the job must still produce the
// exact answer without double-executing work.
func TestMasterChaosRecovery(t *testing.T) {
	for round := 0; round < 3; round++ {
		func() {
			cfg := testClusterConfig()
			cfg.Master.DisableHeuristic = true
			cfg.Master.CloneInterval = 2 * time.Millisecond
			cfg.Node.MonitorInterval = 2 * time.Millisecond
			cfg.Node.OverloadThreshold = 0.01
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			cluster, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Shutdown()

			const n = 60000
			var processed atomic.Int64
			app := sumApp(&processed)
			loadInts(t, ctx, cluster.Store(), "in", n)
			if err := cluster.Start(ctx, app); err != nil {
				t.Fatal(err)
			}

			// Kill and recover the master three times at staggered points.
			for k := 0; k < 3; k++ {
				target := int64(n) * int64(k+1) / 5
				for processed.Load() < target {
					select {
					case <-cluster.Master().Done():
						// Job finished early; nothing left to crash.
						k = 3
						target = 0
					default:
					}
					if target == 0 || ctx.Err() != nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if k >= 3 {
					break
				}
				if err := cluster.CrashMaster(); err != nil {
					t.Fatal(err)
				}
				time.Sleep(3 * time.Millisecond)
				cluster.RecoverMaster(ctx)
			}

			if err := cluster.Wait(ctx); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			want := int64(n) * (n - 1) / 2
			if got := readSum(t, ctx, cluster.Store()); got != want {
				t.Fatalf("round %d: sum = %d, want %d (processed %d)",
					round, got, want, processed.Load())
			}
			// Master crashes alone never restart tasks, so every record is
			// processed exactly once.
			if processed.Load() != n {
				t.Errorf("round %d: processed %d, want exactly %d", round, processed.Load(), n)
			}
		}()
	}
}

// TestCombinedChaos injects a master crash AND a compute-node crash in the
// same run; the recovered master must pick up the in-flight recovery state
// from the work bags.
func TestCombinedChaos(t *testing.T) {
	cfg := testClusterConfig()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const n = 60000
	var processed atomic.Int64
	app := sumApp(&processed)
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Start(ctx, app); err != nil {
		t.Fatal(err)
	}
	for processed.Load() < n/10 && ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	// Crash a compute node, recover it via the master, then immediately
	// crash the master before the restarted task can get far.
	if err := cluster.CrashComputeNode("compute-2", true); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if err := cluster.CrashMaster(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	cluster.RecoverMaster(ctx)

	if err := cluster.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSum(t, ctx, cluster.Store()); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}
