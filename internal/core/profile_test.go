package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSpanSnapshotAccounting: the worker's snapshot derives compute as
// the wall-clock remainder, so the in-worker phases always sum exactly
// to the worker's wall time (the property EXPLAIN ANALYZE and the
// critical path rely on).
func TestSpanSnapshotAccounting(t *testing.T) {
	tc := &TaskCtx{bp: &Blueprint{ID: "t/w0@e0", Spec: "t", Worker: 0}}
	tc.spanStartNS = 1_000
	tc.spanEndNS = 11_000
	tc.queueNS = 300
	tc.spans = spanAcc{readNS: 2_000, writeNS: 1_000, shuffleNS: 500, finalizeNS: 500}
	tc.bytesIn.Store(64)

	s := tc.spanSnapshot()
	if s == nil {
		t.Fatal("snapshot nil with spans on")
	}
	if s.ShuffleNS != 1_500 { // inserter waits + partitioned flushes
		t.Fatalf("shuffle = %d", s.ShuffleNS)
	}
	if s.ComputeNS != 6_000 {
		t.Fatalf("compute = %d", s.ComputeNS)
	}
	if sum := s.ReadNS + s.ComputeNS + s.ShuffleNS + s.FinalizeNS; sum != s.WallNS() {
		t.Fatalf("phases sum %d, wall %d", sum, s.WallNS())
	}
	if s.QueueNS != 300 || s.BytesIn != 64 {
		t.Fatalf("snapshot: %+v", s)
	}

	// Measured phases can slightly overrun the wall clock (independent
	// clock reads); compute clamps at zero rather than going negative.
	tc.spans.readNS = 50_000
	if s := tc.spanSnapshot(); s.ComputeNS != 0 {
		t.Fatalf("compute not clamped: %d", s.ComputeNS)
	}

	// Disabled or never-started workers produce no snapshot.
	tc.spanOff = true
	if tc.spanSnapshot() != nil {
		t.Fatal("snapshot with spans off")
	}
	tc.spanOff = false
	tc.spanStartNS = 0
	if tc.spanSnapshot() != nil {
		t.Fatal("snapshot for never-started worker")
	}
}

// TestSpanAccountingAllocs: the per-chunk span hot path (read/write
// credits, shuffle flush credits with a reused parts map) must not
// allocate — it runs once per chunk on every worker.
func TestSpanAccountingAllocs(t *testing.T) {
	tc := &TaskCtx{}
	if n := testing.AllocsPerRun(1000, func() {
		tc.spans.addRead(5)
		tc.spans.addWrite(3)
	}); n != 0 {
		t.Fatalf("read/write credit allocates %.1f per op", n)
	}
	parts := map[string]int64{"shuf.p0": 10, "shuf.p1": 5}
	tc.AddShuffleSpan(100, 15, parts) // first call builds the map
	if n := testing.AllocsPerRun(1000, func() {
		tc.AddShuffleSpan(100, 15, parts)
	}); n != 0 {
		t.Fatalf("shuffle credit allocates %.1f per op", n)
	}
}

// TestProfileEndpointLiveCluster runs a job to completion and checks the
// profile surface end to end: JobHandle.Profile carries spans for every
// stage with coherent phase accounting, and /debug/profile/<job> serves
// the same data as JSON (404 for unknown jobs).
func TestProfileEndpointLiveCluster(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var proc atomic.Int64
	h, err := cluster.SubmitJob(ctx, sumApp(&proc), JobConfig{Name: "prof"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), h.Bag("in"), 8000)
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	p := h.Profile()
	if p == nil || p.Job != "prof" {
		t.Fatalf("profile: %+v", p)
	}
	if p.WallNS <= 0 {
		t.Fatalf("wall %d", p.WallNS)
	}
	if len(p.Stages) == 0 || len(p.Critical) == 0 || p.CriticalNS <= 0 {
		t.Fatalf("profile missing stages or critical path: %s", p)
	}
	for _, st := range p.Stages {
		for _, s := range st.Tasks {
			wall := s.WallNS()
			if wall <= 0 {
				t.Fatalf("%s: wall %d", s.TaskID, wall)
			}
			// In-worker phases sum to wall exactly while compute is
			// positive; allow a sliver of clock skew for the clamped case.
			sum := s.ReadNS + s.ComputeNS + s.ShuffleNS + s.FinalizeNS
			diff := sum - wall
			if diff < 0 {
				diff = -diff
			}
			if diff > wall/10+int64(time.Millisecond) {
				t.Fatalf("%s: phases sum %d vs wall %d", s.TaskID, sum, wall)
			}
		}
	}

	srv := httptest.NewServer(cluster.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/profile/prof")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/profile/prof: status %d: %s", resp.StatusCode, body)
	}
	var served obs.Profile
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatalf("/debug/profile/prof not JSON: %v", err)
	}
	if served.Job != "prof" || len(served.Stages) != len(p.Stages) || served.CriticalNS != p.CriticalNS {
		t.Fatalf("served profile diverges: %+v vs %+v", served, p)
	}

	resp, err = http.Get(srv.URL + "/debug/profile/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}
}

// TestProfileDisableSpans: with the profiler off the job still completes
// and Profile degrades to a stage-less (but well-formed) profile.
func TestProfileDisableSpans(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.DisableSpans = true
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var proc atomic.Int64
	h, err := cluster.SubmitJob(ctx, sumApp(&proc), JobConfig{Name: "quiet"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), h.Bag("in"), 2000)
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	p := h.Profile()
	if p == nil {
		t.Fatal("profile nil for finished job")
	}
	if len(p.Stages) != 0 || len(p.Critical) != 0 {
		t.Fatalf("spans collected despite DisableSpans: %s", p)
	}
	if p.WallNS <= 0 {
		t.Fatalf("wall %d", p.WallNS)
	}
}
