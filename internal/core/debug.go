package core

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sketch"
)

// The live debug surface. DebugHandler serves the cluster's observability
// over HTTP:
//
//	/metrics             Prometheus text exposition of the metrics registry
//	/debug/trace         the skew-event trace as JSON (?job=, ?type=, and
//	                     ?trace= — the submitter-minted causal ID — filter)
//	/debug/skew          per-edge heavy-hitter table and partition heat, from
//	                     the live merged producer sketches
//	/debug/profile/<job> the job's execution profile (JobHandle.Profile) as
//	                     JSON: per-stage phase spans, critical path, edge skew
//	/debug/explain/<job> the job's EXPLAIN ANALYZE as text (the compiled
//	                     plan's rendering when the job registered one)
//	/debug/timeseries    the sampled metric history as JSON (?series=
//	                     substring filters, ?since= incremental polls)
//	/debug/alerts        watchdog status: rules, per-series states, and
//	                     the raised-alert history (?firing=1 filters)
//	/debug/dash          the live dashboard — one self-contained HTML
//	                     page with inline sparklines polling the above
//	/debug/pprof/        the standard net/http/pprof profiles
//
// /debug/profile/ and /debug/explain/ with an empty job name accept
// ?trace=<id> and resolve the job through its submission trace ID.
//
// cmd/hurricane-run mounts it with -serve; embedded users mount it on any
// mux. Handlers read the same structures the control plane writes, so
// they are safe against a running cluster.

// HeavyHitter is one heavy key of a shuffle edge as reported by the
// merged producer sketches. Key is the raw key bytes hex-encoded;
// KeyUint64 additionally decodes 8-byte keys as little-endian uint64 (the
// encoding of hurricane.Uint64Key), which is how most workloads key their
// records.
type HeavyHitter struct {
	Key       string  `json:"key"`
	KeyUint64 *uint64 `json:"key_u64,omitempty"`
	Count     uint64  `json:"count"`
	Share     float64 `json:"share"`
}

// PartitionHeat is the record count routed to one physical partition bag
// of an edge, with its share of the edge total.
type PartitionHeat struct {
	Bag     string  `json:"bag"`
	Records uint64  `json:"records"`
	Share   float64 `json:"share"`
}

// SkewEdge is the live skew picture of one partitioned shuffle edge.
type SkewEdge struct {
	Job     string `json:"job"`
	Edge    string `json:"edge"`
	Version int    `json:"version"`
	Base    int    `json:"base"`
	// Splits maps base partition -> split fan (only refined partitions).
	Splits   map[int]int `json:"splits,omitempty"`
	Isolated int         `json:"isolated"`
	Records  uint64      `json:"records"`
	// Partitions is the per-partition heat table, hottest first.
	Partitions []PartitionHeat `json:"partitions,omitempty"`
	// Heavy lists the heavy-hitter keys, heaviest first.
	Heavy []HeavyHitter `json:"heavy,omitempty"`
}

// SkewReport assembles the live skew picture across every job the
// cluster knows: for each partitioned edge, the current partition map
// (base layout, splits, isolations) joined with the freshest merged
// producer sketch — fetched live from storage when available, falling
// back to the master's last captured stats (a sealed edge's sketch state
// is deleted at seal time). Edges that never saw a record are skipped.
func (c *Cluster) SkewReport(ctx context.Context) []SkewEdge {
	c.mu.Lock()
	jobs := make([]*JobHandle, 0, len(c.jobs))
	for _, h := range c.jobs {
		jobs = append(jobs, h)
	}
	c.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].id < jobs[j].id })
	var out []SkewEdge
	for _, h := range jobs {
		m := h.currentMaster()
		if m == nil {
			continue
		}
		mem := m.EdgeMemory()
		names := make([]string, 0, len(mem))
		for name := range mem {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			em := mem[name]
			stats := em.Stats
			if fresh, err := c.store.FetchSketch(ctx, name); err == nil && fresh != nil && fresh.Total() > 0 {
				stats = fresh
			}
			se := SkewEdge{Job: h.id, Edge: name}
			if em.PMap != nil {
				se.Version = em.PMap.Version
				se.Base = em.PMap.Base
				se.Isolated = len(em.PMap.Isolated)
				if len(em.PMap.Splits) > 0 {
					se.Splits = make(map[int]int, len(em.PMap.Splits))
					for p, fan := range em.PMap.Splits {
						se.Splits[p] = fan
					}
				}
			}
			if stats == nil || stats.Total() == 0 {
				continue
			}
			se.Records = stats.Total()
			total := float64(se.Records)
			for bag, n := range stats.Counts {
				se.Partitions = append(se.Partitions, PartitionHeat{
					Bag: bag, Records: n, Share: float64(n) / total,
				})
			}
			sort.Slice(se.Partitions, func(i, j int) bool {
				a, b := se.Partitions[i], se.Partitions[j]
				if a.Records != b.Records {
					return a.Records > b.Records
				}
				return a.Bag < b.Bag
			})
			for _, hk := range stats.TopKeys(sketch.MaxHeavyKeys, 0) {
				hh := HeavyHitter{
					Key:   hex.EncodeToString(hk.Key),
					Count: hk.Count,
					Share: float64(hk.Count) / total,
				}
				if len(hk.Key) == 8 {
					u := binary.LittleEndian.Uint64(hk.Key)
					hh.KeyUint64 = &u
				}
				se.Heavy = append(se.Heavy, hh)
			}
			out = append(out, se)
		}
	}
	return out
}

// skewSource feeds the time-series recorder the per-edge heat shares on
// every sample tick: the top partition's share of the edge's records and
// the top heavy key's share, labeled by job and edge. It reads only the
// masters' captured EdgeMemory stats — deliberately never the live
// sketch bags, so sampling stays off the wire (SkewReport pays that cost
// on demand; a 4 Hz sampler must not).
func (c *Cluster) skewSource() obs.Source {
	return func(emit func(string, float64)) {
		c.mu.Lock()
		jobs := make([]*JobHandle, 0, len(c.jobs))
		for _, h := range c.jobs {
			jobs = append(jobs, h)
		}
		c.mu.Unlock()
		for _, h := range jobs {
			m := h.currentMaster()
			if m == nil {
				continue
			}
			for name, em := range m.EdgeMemory() {
				stats := em.Stats
				if stats == nil || stats.Total() == 0 {
					continue
				}
				total := float64(stats.Total())
				var top uint64
				for _, n := range stats.Counts {
					if n > top {
						top = n
					}
				}
				lbl := fmt.Sprintf("{edge=%q,job=%q}", name, h.id)
				emit("hurricane_skew_partition_top_share"+lbl, float64(top)/total)
				if hk := stats.TopKeys(1, 0); len(hk) > 0 {
					emit("hurricane_skew_key_top_share"+lbl, float64(hk[0].Count)/total)
				}
			}
		}
	}
}

// DebugHandler returns the HTTP handler serving /metrics, /debug/trace,
// /debug/skew, the continuous-telemetry surfaces (/debug/timeseries,
// /debug/alerts, /debug/dash), and /debug/pprof/. Mount it at the server
// root (the paths are absolute).
func (c *Cluster) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.obs.Registry().WriteText(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		job := r.URL.Query().Get("job")
		trace := r.URL.Query().Get("trace")
		typ := obs.EventType(r.URL.Query().Get("type"))
		tr := c.obs.Tracer()
		resp := struct {
			Dropped uint64      `json:"dropped"`
			Events  []obs.Event `json:"events"`
		}{Dropped: tr.Dropped(), Events: tr.EventsFiltered(job, trace, typ)}
		if resp.Events == nil {
			resp.Events = []obs.Event{}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/debug/skew", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
		defer cancel()
		report := c.SkewReport(ctx)
		if report == nil {
			report = []SkewEdge{}
		}
		writeJSON(w, report)
	})
	mux.HandleFunc("/debug/profile/", func(w http.ResponseWriter, r *http.Request) {
		job := strings.TrimPrefix(r.URL.Path, "/debug/profile/")
		h := c.debugJob(job, r.URL.Query().Get("trace"))
		if h == nil {
			http.Error(w, "unknown job "+job, http.StatusNotFound)
			return
		}
		p := h.Profile()
		if p == nil {
			http.Error(w, "job "+job+" is queued; no profile yet", http.StatusNotFound)
			return
		}
		writeJSON(w, p)
	})
	mux.HandleFunc("/debug/explain/", func(w http.ResponseWriter, r *http.Request) {
		job := strings.TrimPrefix(r.URL.Path, "/debug/explain/")
		h := c.debugJob(job, r.URL.Query().Get("trace"))
		if h == nil {
			http.Error(w, "unknown job "+job, http.StatusNotFound)
			return
		}
		text := h.Explain()
		if text == "" {
			http.Error(w, "job "+job+" is queued; no profile yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(text))
	})
	mux.Handle("/debug/timeseries", obs.TimeseriesHandler(c.rec))
	mux.Handle("/debug/alerts", obs.AlertsHandler(c.watch))
	mux.Handle("/debug/dash", obs.DashHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// debugJob resolves a debug request's job selector: an explicit job
// name wins; an empty name with ?trace= resolves through the submission
// trace ID; an empty name alone falls back to the primary job.
func (c *Cluster) debugJob(job, trace string) *JobHandle {
	if job != "" {
		return c.Job(job)
	}
	if trace != "" {
		return c.JobByTrace(trace)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
