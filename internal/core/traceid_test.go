package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestCausalTraceID runs a job submitted with a causal trace ID — the
// cross-process correlation handle a remote submitter mints — and checks
// the whole chain: events stamped, profile tagged, JobByTrace resolution,
// and the ?trace= forms of /debug/trace, /debug/profile/, and
// /debug/explain/ that a remote client uses without knowing the job name.
func TestCausalTraceID(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const traceID = "t-cafe0123"
	var proc atomic.Int64
	h, err := cluster.SubmitJob(ctx, sumApp(&proc), JobConfig{Name: "jobT", TraceID: traceID})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), h.Bag("in"), 4000)
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// The handle resolves by trace ID, and its profile carries the ID.
	if got := cluster.JobByTrace(traceID); got != h {
		t.Fatalf("JobByTrace = %v, want the submitted handle", got)
	}
	if got := cluster.JobByTrace("t-unknown"); got != nil {
		t.Fatalf("unknown trace resolved to %v", got)
	}
	p := h.Profile()
	if p == nil || p.TraceID != traceID {
		t.Fatalf("profile trace ID = %+v, want %q", p, traceID)
	}

	// Every trace event of the job is stamped.
	events := cluster.Observer().Tracer().Events("jobT", "")
	if len(events) == 0 {
		t.Fatal("no events for jobT")
	}
	for _, e := range events {
		if e.Trace != traceID {
			t.Fatalf("unstamped event: %+v", e)
		}
	}

	srv := httptest.NewServer(cluster.DebugHandler())
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// /debug/trace?trace= narrows to the stamped events.
	code, body := get("/debug/trace?trace=" + traceID)
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", code)
	}
	var tracePage struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &tracePage); err != nil {
		t.Fatal(err)
	}
	if len(tracePage.Events) == 0 {
		t.Fatal("?trace= returned no events")
	}
	for _, e := range tracePage.Events {
		if e.Job != "jobT" || e.Trace != traceID {
			t.Fatalf("?trace= leaked foreign event: %+v", e)
		}
	}

	// /debug/profile/?trace= resolves the job without its name.
	code, body = get("/debug/profile/?trace=" + traceID)
	if code != http.StatusOK {
		t.Fatalf("/debug/profile/?trace= status %d: %s", code, body)
	}
	var prof obs.Profile
	if err := json.Unmarshal([]byte(body), &prof); err != nil {
		t.Fatal(err)
	}
	if prof.TraceID != traceID || prof.Job != "jobT" {
		t.Fatalf("remote profile = job %q trace %q", prof.Job, prof.TraceID)
	}

	// /debug/explain/?trace=: default rendering first, then a registered
	// renderer (what a planner-compiled job installs via SetExplain).
	code, body = get("/debug/explain/?trace=" + traceID)
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/explain/?trace= status %d body %q", code, body)
	}
	if !strings.Contains(body, "jobT") {
		t.Fatalf("default explain does not mention the job: %q", body)
	}
	h.SetExplain(func(p *obs.Profile) string { return "EXPLAIN:" + p.TraceID })
	code, body = get("/debug/explain/?trace=" + traceID)
	if code != http.StatusOK || body != "EXPLAIN:"+traceID {
		t.Fatalf("registered explain: status %d body %q", code, body)
	}

	// Unknown trace IDs 404 on both resolving endpoints.
	if code, _ := get("/debug/explain/?trace=t-unknown"); code != http.StatusNotFound {
		t.Fatalf("unknown trace explain status %d", code)
	}
	if code, _ := get("/debug/profile/?trace=t-unknown"); code != http.StatusNotFound {
		t.Fatalf("unknown trace profile status %d", code)
	}
}
