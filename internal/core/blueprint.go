package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/obs"
)

// TaskKind distinguishes ordinary tasks from the merge tasks the master
// injects when a task with a merge procedure is cloned.
type TaskKind uint8

const (
	// KindTask runs a TaskSpec's Run function.
	KindTask TaskKind = iota
	// KindMerge runs a TaskSpec's Merge function over clone partials.
	KindMerge
)

// Blueprint is the unit of scheduling: "each task consists of a task
// blueprint, containing a unique task identifier and the code necessary to
// execute the task, as well as the identifiers of its input and output
// bags" (§3.1). Code travels by name: workers look the name up in their
// local App registry, which plays the role of shipped code.
type Blueprint struct {
	// ID uniquely identifies this worker instance, e.g. "count.usa/w2@e0"
	// (task count.usa, worker index 2, restart epoch 0).
	ID string `json:"id"`
	// Spec is the TaskSpec name whose Run (or Merge) function to execute.
	Spec string `json:"spec"`
	// Kind selects Run or Merge.
	Kind TaskKind `json:"kind"`
	// Worker is the worker index within the task: 0 is the original,
	// 1..k are clones.
	Worker int `json:"worker"`
	// Epoch counts task restarts after compute-node failures. Records
	// from stale epochs are ignored by the master.
	Epoch int `json:"epoch"`
	// Inputs and Outputs are the concrete bag names this worker reads and
	// writes. For a cloned task with a merge procedure, Outputs names the
	// worker's private partial bag rather than the declared output.
	Inputs  []string `json:"inputs"`
	Outputs []string `json:"outputs"`
	// ScanInputs are bags the worker reads in full without consuming.
	ScanInputs []string `json:"scanInputs,omitempty"`
	// ScheduledAt is the unix-nanosecond time the master published the
	// blueprint; the profiler's queue-wait phase is the gap to worker
	// start. Zero (e.g. a blueprint from an older encoding) reads as
	// "unknown" and contributes no queue wait.
	ScheduledAt int64 `json:"scheduledAt,omitempty"`
}

// blueprintID formats the canonical worker-instance identifier.
func blueprintID(spec string, worker, epoch int) string {
	return fmt.Sprintf("%s/w%d@e%d", spec, worker, epoch)
}

// partialBag names the private partial-output bag for a worker of a task
// whose outputs must be merged.
func partialBag(output string, worker, epoch int) string {
	return fmt.Sprintf("%s~p%d@e%d", output, worker, epoch)
}

// Encode serializes the blueprint for insertion into a work bag.
func (b *Blueprint) Encode() []byte {
	data, err := json.Marshal(b)
	if err != nil {
		panic(fmt.Sprintf("core: blueprint marshal: %v", err)) // no unmarshalable fields
	}
	return data
}

// DecodeBlueprint parses a blueprint record.
func DecodeBlueprint(data []byte) (*Blueprint, error) {
	var b Blueprint
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("core: bad blueprint record: %w", err)
	}
	return &b, nil
}

// event is a record in the running or done work bag.
type event struct {
	// TaskID is the blueprint ID the event refers to.
	TaskID string `json:"task"`
	// Spec is the blueprint's spec name.
	Spec string `json:"spec"`
	// Node is the compute node reporting the event.
	Node string `json:"node"`
	// Epoch mirrors the blueprint epoch.
	Epoch int `json:"epoch"`
	// Worker mirrors the blueprint worker index.
	Worker int `json:"worker"`
	// Merge is set for merge-task events.
	Merge bool `json:"merge,omitempty"`
	// OK is set on successful completion (done bag only).
	OK bool `json:"ok"`
	// Err carries the failure message for unsuccessful completions.
	Err string `json:"err,omitempty"`
	// Spans is the worker's profiler phase accounting, attached to done
	// events (nil when span profiling is disabled or the worker crashed).
	Spans *obs.TaskSpans `json:"spans,omitempty"`
}

func (e *event) encode() []byte {
	data, err := json.Marshal(e)
	if err != nil {
		panic(fmt.Sprintf("core: event marshal: %v", err))
	}
	return data
}

func decodeEvent(data []byte) (*event, error) {
	var e event
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("core: bad event record: %w", err)
	}
	return &e, nil
}
