package core

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bag"
	"repro/internal/chunk"
	"repro/internal/sched"
	"repro/internal/sketch"
)

// loadIntsBag loads n int64 records into a named bag and seals it.
func loadIntsBag(t *testing.T, ctx context.Context, store *bag.Store, bagName string, n int) {
	t.Helper()
	h := store.Bag(bagName)
	w := chunk.NewTypedWriter[int64](chunk.Int64Codec{}, store.ChunkSize(), func(c chunk.Chunk) error {
		return h.Insert(ctx, c)
	})
	for i := 0; i < n; i++ {
		if err := w.Write(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := store.Seal(ctx, bagName); err != nil {
		t.Fatal(err)
	}
}

// waitNoLeakedSlots asserts that, shortly after all jobs complete, every
// claimed worker slot has been returned to the pool.
func waitNoLeakedSlots(t *testing.T, c *Cluster) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c.FreeSlots() == c.TotalSlots() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked slots: free %d of %d total", c.FreeSlots(), c.TotalSlots())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTwoConcurrentJobs submits two namespaced instances of the same
// application graph to one cluster; both run concurrently over the
// shared compute pool and both must produce the exact answer.
func TestTwoConcurrentJobs(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.Sched.Interval = 2 * time.Millisecond
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const nA, nB = 20000, 12000
	var procA, procB atomic.Int64
	appA, appB := sumApp(&procA), sumApp(&procB)

	// Namespacing maps both jobs' identical declared names apart.
	hA, err := cluster.SubmitJob(ctx, appA, JobConfig{Name: "jobA"})
	if err != nil {
		t.Fatal(err)
	}
	hB, err := cluster.SubmitJob(ctx, appB, JobConfig{Name: "jobB"})
	if err != nil {
		t.Fatal(err)
	}
	if hA.Bag("in") != "jobA/in" || hB.Bag("out") != "jobB/out" {
		t.Fatalf("namespaced bag names wrong: %q %q", hA.Bag("in"), hB.Bag("out"))
	}
	loadIntsBag(t, ctx, cluster.Store(), hA.Bag("in"), nA)
	loadIntsBag(t, ctx, cluster.Store(), hB.Bag("in"), nB)

	if err := hA.Wait(ctx); err != nil {
		t.Fatalf("jobA: %v", err)
	}
	if err := hB.Wait(ctx); err != nil {
		t.Fatalf("jobB: %v", err)
	}
	wantA := int64(nA) * (nA - 1) / 2
	wantB := int64(nB) * (nB - 1) / 2
	if got := readSumBag(t, ctx, cluster.Store(), hA.Bag("out")); got != wantA {
		t.Fatalf("jobA sum = %d, want %d", got, wantA)
	}
	if got := readSumBag(t, ctx, cluster.Store(), hB.Bag("out")); got != wantB {
		t.Fatalf("jobB sum = %d, want %d", got, wantB)
	}
	if st := hA.Stats(); st.State != "done" {
		t.Fatalf("jobA state = %s, want done", st.State)
	}
	// Exactly-once per job despite sharing every compute node.
	if procA.Load() != nA || procB.Load() != nB {
		t.Fatalf("processed %d/%d records, want exactly %d/%d",
			procA.Load(), procB.Load(), nA, nB)
	}
	waitNoLeakedSlots(t, cluster)
}

// TestResetStaleHandleDiscard: after Reset releases a job's name, a
// successor may reclaim it; the stale handle's Discard must refuse
// instead of wiping the live successor's namespace out from under it.
func TestResetStaleHandleDiscard(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const n = 5000
	var proc1, proc2 atomic.Int64
	h1, err := cluster.SubmitJob(ctx, sumApp(&proc1), JobConfig{Name: "w"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), h1.Bag("in"), n)
	if err := h1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// Reset releases the name and rewinds the sources; a successor
	// resubmission reclaims both and must reproduce the exact result.
	if err := h1.Reset(ctx); err != nil {
		t.Fatal(err)
	}
	h2, err := cluster.SubmitJob(ctx, sumApp(&proc2), JobConfig{Name: "w"})
	if err != nil {
		t.Fatalf("resubmission after Reset: %v", err)
	}
	if err := h2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSumBag(t, ctx, cluster.Store(), h2.Bag("out")); got != want {
		t.Fatalf("retried job sum = %d, want %d (reset must replay the rewound sources exactly)", got, want)
	}
	if proc2.Load() != n {
		t.Fatalf("retry processed %d records, want exactly %d", proc2.Load(), n)
	}
	// The stale handle must not be able to destroy the reclaimed name —
	// neither by discarding it nor by rewinding/scrubbing it again.
	if err := h1.Discard(ctx); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale handle Discard: err = %v, want stale-handle refusal", err)
	}
	if err := h1.Reset(ctx); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale handle Reset: err = %v, want stale-handle refusal", err)
	}
	if got := readSumBag(t, ctx, cluster.Store(), h2.Bag("out")); got != want {
		t.Fatalf("successor output damaged by stale Discard: %d, want %d", got, want)
	}
	if err := h2.Discard(ctx); err != nil {
		t.Fatalf("live handle Discard: %v", err)
	}
}

// TestSubmitCollisionValidation: the registry rejects, with a clear
// error, submissions whose physical bag names could cross-talk with a
// live job's — including names only derived at runtime.
func TestSubmitCollisionValidation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var proc atomic.Int64
	app := sumApp(&proc)
	loadInts(t, ctx, cluster.Store(), "in", 1000)
	if err := cluster.Start(ctx, app); err != nil {
		t.Fatal(err)
	}

	// Duplicate job name.
	if _, err := cluster.SubmitJob(ctx, sumApp(&proc), JobConfig{Name: "fault"}); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate name not rejected: %v", err)
	}
	// A raw job reusing a live job's bag names would steal its chunks.
	if _, err := cluster.SubmitJob(ctx, sumApp(&proc), JobConfig{Name: "thief", Raw: true}); err == nil ||
		!strings.Contains(err.Error(), `"in"`) {
		t.Fatalf("raw bag collision not rejected: %v", err)
	}
	// A namespaced job with the same graph is fine.
	h, err := cluster.SubmitJob(ctx, sumApp(&proc), JobConfig{Name: "ns"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), h.Bag("in"), 1000)

	// Within one job: a declared bag that shadows a sibling partitioned
	// bag's derived partition names is rejected at submit time.
	bad := NewApp("selfcol")
	bad.SourceBag("src")
	bad.PartitionedBag("x", 2)
	bad.Bag("x.p0")
	bad.Bag("y")
	bad.AddTask(TaskSpec{Name: "prod", Inputs: []string{"src"}, Outputs: []string{"x"}, Run: nop})
	bad.AddTask(TaskSpec{Name: "cons", Inputs: []string{"x"}, Outputs: []string{"y"}, Run: nop})
	if _, err := cluster.SubmitJob(ctx, bad, JobConfig{Name: "selfcol"}); err == nil ||
		!strings.Contains(err.Error(), "x.p0") {
		t.Fatalf("derived-name self collision not rejected: %v", err)
	}
	// Nested namespaces would make Discard reach into a sibling job.
	if _, err := cluster.SubmitJob(ctx, sumApp(&proc), JobConfig{Name: "nested", Prefix: "ns/inner"}); err == nil ||
		!strings.Contains(err.Error(), "nests") {
		t.Fatalf("nested namespace not rejected: %v", err)
	}
	// A raw job whose literal bag name reaches into a live namespace is
	// rejected too: the namespaced job owns its whole "<prefix>/"
	// subtree (Discard sweeps exactly that).
	intruder := NewApp("intruder")
	intruder.SourceBag("ns/in").Bag("intruder.out")
	intruder.AddTask(TaskSpec{Name: "t", Inputs: []string{"ns/in"}, Outputs: []string{"intruder.out"}, Run: nop})
	if _, err := cluster.SubmitJob(ctx, intruder, JobConfig{Name: "intruder", Raw: true}); err == nil ||
		!strings.Contains(err.Error(), `"ns/"`) {
		t.Fatalf("raw bag inside a live namespace not rejected: %v", err)
	}

	if err := cluster.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestMultiJobComputeChurn exercises compute-node churn — add, graceful
// remove, crash — while two jobs run concurrently: both must complete
// with correct output and every worker slot must be returned.
func TestMultiJobComputeChurn(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.Sched.Interval = 2 * time.Millisecond
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const nA, nB = 30000, 30000
	var procA, procB atomic.Int64
	hA, err := cluster.SubmitJob(ctx, sumApp(&procA), JobConfig{Name: "jobA"})
	if err != nil {
		t.Fatal(err)
	}
	hB, err := cluster.SubmitJob(ctx, sumApp(&procB), JobConfig{Name: "jobB"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), hA.Bag("in"), nA)
	loadIntsBag(t, ctx, cluster.Store(), hB.Bag("in"), nB)

	// Wait for both jobs to make progress, then churn the pool.
	for (procA.Load() < nA/10 || procB.Load() < nB/10) && ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	added, err := cluster.AddComputeNode(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.CrashComputeNode("compute-0", true); err != nil {
		t.Fatal(err)
	}
	if err := cluster.RemoveComputeNode("compute-1"); err != nil {
		t.Fatal(err)
	}

	if err := hA.Wait(ctx); err != nil {
		t.Fatalf("jobA: %v", err)
	}
	if err := hB.Wait(ctx); err != nil {
		t.Fatalf("jobB: %v", err)
	}
	wantA := int64(nA) * (nA - 1) / 2
	wantB := int64(nB) * (nB - 1) / 2
	if got := readSumBag(t, ctx, cluster.Store(), hA.Bag("out")); got != wantA {
		t.Fatalf("jobA sum = %d, want %d (stats %+v)", got, wantA, hA.Stats())
	}
	if got := readSumBag(t, ctx, cluster.Store(), hB.Bag("out")); got != wantB {
		t.Fatalf("jobB sum = %d, want %d (stats %+v)", got, wantB, hB.Stats())
	}
	recoveries := hA.Stats().Master.Recoveries + hB.Stats().Master.Recoveries
	if recoveries == 0 {
		t.Error("expected at least one recovery across the two jobs")
	}
	waitNoLeakedSlots(t, cluster)
	t.Logf("added node %s; jobA %+v; jobB %+v", added, hA.Stats(), hB.Stats())
}

// slowSumApp is sumApp with a simulated per-record cost in the copy
// stage (paid as batched sleeps, which count as busy time for overload
// detection), so the job holds its worker slots long enough for
// scheduling decisions to be observable.
func slowSumApp(processed *atomic.Int64, recordCostNS int64) *App {
	app := NewApp("slowfault")
	app.SourceBag("in").Bag("mid").Bag("out")
	app.AddTask(TaskSpec{
		Name:    "copy",
		Inputs:  []string{"in"},
		Outputs: []string{"mid"},
		Run: func(tc *TaskCtx) error {
			w := chunk.NewWriter(1<<10, func(c chunk.Chunk) error { return tc.Insert(0, c) })
			var owedNS int64
			for {
				c, err := tc.Remove(0)
				if err == bag.ErrEmpty {
					return w.Flush()
				}
				if err != nil {
					return err
				}
				r := chunk.NewReader(c)
				for r.Remaining() {
					rec, err := r.Next()
					if err != nil {
						return err
					}
					owedNS += recordCostNS
					if owedNS >= 500_000 {
						time.Sleep(time.Duration(owedNS))
						owedNS = 0
					}
					processed.Add(1)
					if err := w.Append(rec); err != nil {
						return err
					}
				}
			}
		},
	})
	app.AddTask(TaskSpec{
		Name:    "sum",
		Inputs:  []string{"mid"},
		Outputs: []string{"out"},
		Merge:   sumApp(new(atomic.Int64)).Task("sum").Merge,
		Run:     sumApp(new(atomic.Int64)).Task("sum").Run,
	})
	return app
}

// TestFairShareYieldsClones: a clone-hungry job is allowed to swallow the
// whole cluster while alone, but when a second job arrives the scheduler
// preempts clones (cooperative yield at chunk boundaries) back toward
// the fair share — and the first job still produces the exact answer.
func TestFairShareYieldsClones(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.Sched.Interval = 2 * time.Millisecond
	cfg.Master.DisableHeuristic = true
	cfg.Master.CloneInterval = 2 * time.Millisecond
	cfg.Node.MonitorInterval = 2 * time.Millisecond
	cfg.Node.OverloadThreshold = 0.01
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const nA, nB = 60000, 8000
	var procA, procB atomic.Int64
	// ~40µs/record: the greedy job stays saturated for hundreds of
	// scheduler ticks after the modest job arrives.
	hA, err := cluster.SubmitJob(ctx, slowSumApp(&procA, 40_000), JobConfig{Name: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), hA.Bag("in"), nA)

	// Let the greedy job clone its copy stage across the whole pool.
	for cluster.FreeSlots() > 0 && ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	hB, err := cluster.SubmitJob(ctx, sumApp(&procB), JobConfig{Name: "modest"})
	if err != nil {
		t.Fatal(err)
	}
	loadIntsBag(t, ctx, cluster.Store(), hB.Bag("in"), nB)

	if err := hB.Wait(ctx); err != nil {
		t.Fatalf("modest job: %v", err)
	}
	if err := hA.Wait(ctx); err != nil {
		t.Fatalf("greedy job: %v", err)
	}
	wantA := int64(nA) * (nA - 1) / 2
	wantB := int64(nB) * (nB - 1) / 2
	if got := readSumBag(t, ctx, cluster.Store(), hA.Bag("out")); got != wantA {
		t.Fatalf("greedy sum = %d, want %d", got, wantA)
	}
	if got := readSumBag(t, ctx, cluster.Store(), hB.Bag("out")); got != wantB {
		t.Fatalf("modest sum = %d, want %d", got, wantB)
	}
	if y := hA.Stats().Master.Yields; y == 0 {
		t.Errorf("greedy job yielded no clones (stats %+v)", hA.Stats().Master)
	}
	// Yielding must not lose or redo records.
	if procA.Load() != nA {
		t.Errorf("greedy processed %d records, want exactly %d", procA.Load(), nA)
	}
	waitNoLeakedSlots(t, cluster)
}

// TestJobQueueAdmission: with MaxConcurrent=1 the second submission
// queues and starts automatically when the first job finishes.
func TestJobQueueAdmission(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.Sched.MaxConcurrent = 1
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const n = 8000
	var procA, procB atomic.Int64
	hA, err := cluster.SubmitJob(ctx, sumApp(&procA), JobConfig{Name: "first"})
	if err != nil {
		t.Fatal(err)
	}
	hB, err := cluster.SubmitJob(ctx, sumApp(&procB), JobConfig{Name: "second"})
	if err != nil {
		t.Fatal(err)
	}
	if hB.State() != sched.StateQueued {
		t.Fatalf("second job state = %v, want queued", hB.State())
	}
	// Sources for both can be loaded while the second job is queued.
	loadIntsBag(t, ctx, cluster.Store(), hA.Bag("in"), n)
	loadIntsBag(t, ctx, cluster.Store(), hB.Bag("in"), n)

	if err := hA.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := hB.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSumBag(t, ctx, cluster.Store(), hB.Bag("out")); got != want {
		t.Fatalf("queued job sum = %d, want %d", got, want)
	}
	// Discard frees the names for resubmission.
	if err := hB.Discard(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.SubmitJob(ctx, sumApp(&procB), JobConfig{Name: "second"}); err != nil {
		t.Fatalf("resubmission after discard: %v", err)
	}
}

// TestJobContextCancelReleasesResources: cancelling a job's submission
// context fails that job and releases its scheduler state — concurrency
// slot, lease, and workers — so queued neighbors still run.
func TestJobContextCancelReleasesResources(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := testClusterConfig()
	cfg.Sched.MaxConcurrent = 1
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var procA, procB atomic.Int64
	jobCtx, jobCancel := context.WithCancel(ctx)
	defer jobCancel()
	// The doomed job's source is never loaded: its workers idle on the
	// empty bag until the context is cancelled.
	hA, err := cluster.SubmitJob(jobCtx, sumApp(&procA), JobConfig{Name: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	hB, err := cluster.SubmitJob(ctx, sumApp(&procB), JobConfig{Name: "next"})
	if err != nil {
		t.Fatal(err)
	}
	if hB.State() != sched.StateQueued {
		t.Fatalf("second job state = %v, want queued", hB.State())
	}
	const n = 8000
	loadIntsBag(t, ctx, cluster.Store(), hB.Bag("in"), n)

	// Let the doomed job claim at least one worker, then pull its plug.
	for cluster.FreeSlots() == cluster.TotalSlots() && ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	jobCancel()
	if err := hA.Wait(ctx); err == nil {
		t.Fatal("cancelled job reported success")
	}
	if hA.State() != sched.StateFailed {
		t.Fatalf("cancelled job state = %v, want failed", hA.State())
	}
	// The freed concurrency slot admits the queued job, which completes.
	if err := hB.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSumBag(t, ctx, cluster.Store(), hB.Bag("out")); got != want {
		t.Fatalf("queued job sum = %d, want %d", got, want)
	}
	waitNoLeakedSlots(t, cluster)
}

// TestRawDiscardClearsSketches: a raw (non-namespaced) job's Discard
// must drop its partitioned edges' sketch state along with the bags.
// Plain bag deletes don't touch sketches, so without the explicit clear
// a later job reusing the bag name would inherit the dead job's
// cumulative producer statistics and mis-split from its first round.
func TestRawDiscardClearsSketches(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(testClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	app := NewApp("sk").SourceBag("in").
		AddBag(BagSpec{Name: "shuf", Partitions: 2, Spread: true}).Bag("out")
	app.AddTask(TaskSpec{
		Name: "route", Inputs: []string{"in"}, Outputs: []string{"shuf"},
		Run: func(tc *TaskCtx) error { return nil },
	})
	app.AddTask(TaskSpec{
		Name: "drain", Inputs: []string{"shuf"}, Outputs: []string{"out"},
		Run: func(tc *TaskCtx) error { return nil },
	})
	jobCtx, jobCancel := context.WithCancel(ctx)
	defer jobCancel()
	h, err := cluster.SubmitJob(jobCtx, app, JobConfig{Raw: true})
	if err != nil {
		t.Fatal(err)
	}
	// A producer pushes cumulative edge stats while the job runs.
	st := sketch.NewEdgeStats()
	st.Counts["shuf.p0"] = 1000
	if err := cluster.Store().PushSketch(ctx, "shuf", "w0", st); err != nil {
		t.Fatal(err)
	}
	// Source never loads; cancel the job so Discard becomes legal.
	jobCancel()
	if err := h.Wait(ctx); err == nil {
		t.Fatal("cancelled job reported success")
	}
	if err := h.Discard(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Store().FetchSketch(ctx, "shuf")
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != 0 {
		t.Fatalf("discarded job's edge sketch survived: %d records", got.Total())
	}
}
