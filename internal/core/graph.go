// Package core implements Hurricane's execution engine: the application
// graph, task blueprints, worker runtime, per-node task managers, and the
// application master with its task cloning machinery. This is the paper's
// primary contribution — adaptive work partitioning through task cloning —
// built on the bag/chunk/storage substrates.
package core

import (
	"fmt"
	"sort"
)

// A TaskFunc is the body of a task. It consumes chunks from the task's
// input bags and produces chunks into its output bags through the
// TaskCtx. Multiple workers (the original task plus clones) may run the
// same TaskFunc concurrently against the same input bags; the bag
// abstraction guarantees each chunk is processed exactly once.
type TaskFunc func(tc *TaskCtx) error

// TaskSpec declares one task of the application graph.
type TaskSpec struct {
	// Name uniquely identifies the task within the application and keys
	// the registered TaskFunc.
	Name string
	// Inputs and Outputs name the task's input and output bags. Inputs
	// are consumed: each chunk is delivered to exactly one worker of this
	// task. A bag may be the consumed input of at most one task.
	Inputs  []string
	Outputs []string
	// ScanInputs name bags the task reads in full without consuming them
	// (§4.3: "allowing multiple workers to read an entire bag
	// concurrently"). Every worker — original and clones — sees the whole
	// bag, which is how a hash join's build side or PageRank's rank
	// vector is shared. Scan inputs are scheduling dependencies like
	// Inputs, and any number of tasks may scan the same bag.
	ScanInputs []string
	// Run is the task body.
	Run TaskFunc
	// Merge, if non-nil, reconciles the partial outputs of clones into
	// the final output (§2.3). Tasks with a nil Merge use concatenation:
	// clones insert directly into the shared output bag. A task with a
	// Merge must have exactly one output.
	Merge TaskFunc
	// Pipelined schedules the task as soon as all producers of its input
	// bags are scheduled, instead of waiting for the bags to seal. The
	// task streams chunks as they are produced and terminates when the
	// bags seal and drain — the "more sophisticated dataflow execution
	// model for streaming workloads" the paper leaves as future work
	// (§3.1). Scan inputs still require sealed bags (a scan must see the
	// complete contents).
	Pipelined bool
	// NoClone excludes the task from cloning (used to build the
	// HurricaneNC configuration from the paper's Figure 6).
	NoClone bool
	// MaxClones caps the worker count for this task; 0 means "up to the
	// cluster's worker slots".
	MaxClones int
}

// requiresMerge reports whether cloned outputs need reconciliation.
func (t *TaskSpec) requiresMerge() bool { return t.Merge != nil }

// BagSpec declares one bag of the application graph.
type BagSpec struct {
	Name string
	// Source marks a bag whose contents are supplied by the application
	// before the job runs (e.g. the input click log). Source bags must be
	// sealed by the caller before Run.
	Source bool
	// Partitions > 0 declares a key-partitioned shuffle edge: the logical
	// bag is multiplexed onto Partitions physical partition bags
	// ("<name>.p<i>"). Producers must write it through a
	// PartitionedWriter; the consumer task gets one worker per physical
	// partition, and the master may split hot partitions at runtime
	// (internal/shuffle).
	Partitions int
	// Spread permits record-level spreading of isolated heavy-hitter
	// keys across several consumers. Safe whenever the consumer's
	// per-key results are mergeable downstream (counts, sums, sketches,
	// join probes); leave false if a consumer must see all records of a
	// key.
	Spread bool
	// SketchEvery / PollEvery tune the producer-side control cadences for
	// a partitioned bag: records between sketch pushes and between
	// partition-map polls. 0 uses the shuffle package defaults; tests and
	// latency-sensitive edges lower them.
	SketchEvery int
	PollEvery   int
}

// App is an application graph: a DAG of tasks and bags (§2.1). Build one
// with NewApp and the AddBag/AddTask methods, then hand it to a Cluster.
type App struct {
	name  string
	tasks map[string]*TaskSpec
	bags  map[string]*BagSpec

	// derived wiring
	producers map[string][]string // bag -> producing task names
	consumers map[string][]string // bag -> consuming task names
	scanners  map[string][]string // bag -> scanning task names
}

// NewApp returns an empty application graph.
func NewApp(name string) *App {
	return &App{
		name:      name,
		tasks:     make(map[string]*TaskSpec),
		bags:      make(map[string]*BagSpec),
		producers: make(map[string][]string),
		consumers: make(map[string][]string),
		scanners:  make(map[string][]string),
	}
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

// AddBag declares a bag. Redeclaring a name is an error at Validate time.
func (a *App) AddBag(spec BagSpec) *App {
	if _, dup := a.bags[spec.Name]; dup {
		a.bags[spec.Name] = &BagSpec{Name: spec.Name} // poisoned; Validate reports
	}
	s := spec
	a.bags[spec.Name] = &s
	return a
}

// SourceBag declares a source bag (input data supplied by the caller).
func (a *App) SourceBag(name string) *App {
	return a.AddBag(BagSpec{Name: name, Source: true})
}

// Bag declares an intermediate or output bag.
func (a *App) Bag(name string) *App {
	return a.AddBag(BagSpec{Name: name})
}

// PartitionedBag declares a key-partitioned shuffle bag with parts base
// partitions. Use AddBag with a full BagSpec to also set Spread.
func (a *App) PartitionedBag(name string, parts int) *App {
	return a.AddBag(BagSpec{Name: name, Partitions: parts})
}

// BagSpecFor returns the named bag's spec, or nil.
func (a *App) BagSpecFor(name string) *BagSpec { return a.bags[name] }

// partitioned reports whether a bag is a partitioned shuffle edge.
func (a *App) partitioned(name string) bool {
	b := a.bags[name]
	return b != nil && b.Partitions > 0
}

// AddTask declares a task.
func (a *App) AddTask(spec TaskSpec) *App {
	s := spec
	a.tasks[spec.Name] = &s
	return a
}

// Task returns the named task spec, or nil.
func (a *App) Task(name string) *TaskSpec { return a.tasks[name] }

// Tasks returns all task names in deterministic order.
func (a *App) Tasks() []string {
	out := make([]string, 0, len(a.tasks))
	for n := range a.tasks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Bags returns all bag names in deterministic order.
func (a *App) Bags() []string {
	out := make([]string, 0, len(a.bags))
	for n := range a.bags {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Producers returns the tasks producing into the named bag.
func (a *App) Producers(bagName string) []string { return a.producers[bagName] }

// Consumers returns the tasks consuming the named bag.
func (a *App) Consumers(bagName string) []string { return a.consumers[bagName] }

// Validate checks the graph for structural errors: undeclared bags,
// unnamed or duplicate tasks, merge arity, source bags with producers, and
// cycles. It also computes the producer/consumer wiring used by the
// master.
func (a *App) Validate() error {
	a.producers = make(map[string][]string)
	a.consumers = make(map[string][]string)
	a.scanners = make(map[string][]string)
	for name, t := range a.tasks {
		if name == "" {
			return fmt.Errorf("core: task with empty name")
		}
		if t.Run == nil {
			return fmt.Errorf("core: task %q has no Run function", name)
		}
		if t.requiresMerge() && len(t.Outputs) != 1 {
			return fmt.Errorf("core: task %q has a merge but %d outputs (need exactly 1)",
				name, len(t.Outputs))
		}
		if len(t.Inputs) == 0 && len(t.ScanInputs) == 0 {
			return fmt.Errorf("core: task %q has no inputs", name)
		}
		for _, b := range t.Inputs {
			if _, ok := a.bags[b]; !ok {
				return fmt.Errorf("core: task %q reads undeclared bag %q", name, b)
			}
			if a.partitioned(b) {
				// A partitioned consumer's workers each own one physical
				// partition; mixing in other consumed inputs would break
				// the worker↔partition assignment.
				if len(t.Inputs) != 1 {
					return fmt.Errorf("core: task %q consumes partitioned bag %q alongside other inputs", name, b)
				}
				// DOCUMENTED LIMITATION — pipelined ≠ partitioned. A
				// pipelined consumer starts while its producers still run,
				// but a partitioned consumer's worker set is fixed at
				// schedule time from the edge's partition map, and the map
				// only stops changing when the producers finish: starting
				// early would freeze the map mid-refinement and leave
				// later splits/isolations with no assigned consumer. The
				// supported way to stream over partitioned edges is the
				// windowed path (internal/stream): the unbounded input is
				// cut into event-time windows, each executed as a complete
				// DAG job whose edges partition, split, and isolate
				// normally — and cross-window skew memory carries the
				// learned partition maps between windows, which pipelining
				// could not do at all.
				if t.Pipelined {
					return fmt.Errorf("core: task %q: pipelined consumption of partitioned bag %q is unsupported; use the windowed streaming path (internal/stream)", name, b)
				}
			}
			a.consumers[b] = append(a.consumers[b], name)
		}
		for _, b := range t.ScanInputs {
			if _, ok := a.bags[b]; !ok {
				return fmt.Errorf("core: task %q scans undeclared bag %q", name, b)
			}
			if a.partitioned(b) {
				return fmt.Errorf("core: task %q scans partitioned bag %q; scan the underlying source instead", name, b)
			}
			a.scanners[b] = append(a.scanners[b], name)
		}
		for _, b := range t.Outputs {
			spec, ok := a.bags[b]
			if !ok {
				return fmt.Errorf("core: task %q writes undeclared bag %q", name, b)
			}
			if spec.Source {
				return fmt.Errorf("core: task %q writes source bag %q", name, b)
			}
			if spec.Partitions > 0 && t.requiresMerge() {
				// Partitioned producers write physical bags directly via
				// PartitionedWriter; clone reconciliation happens in the
				// partitioned consumers, not in a merge task.
				return fmt.Errorf("core: task %q: a merge procedure cannot target partitioned bag %q", name, b)
			}
			a.producers[b] = append(a.producers[b], name)
		}
	}
	for name, b := range a.bags {
		if b.Partitions > 0 && b.Source {
			return fmt.Errorf("core: partitioned bag %q cannot be a source bag", name)
		}
		if b.Spread && b.Partitions <= 0 {
			return fmt.Errorf("core: bag %q sets Spread without Partitions", name)
		}
	}
	for b := range a.producers {
		sort.Strings(a.producers[b])
	}
	for b, cons := range a.consumers {
		sort.Strings(cons)
		// Consuming a bag destroys it for other readers: the chunk-level
		// exactly-once guarantee is per bag, not per task, so two
		// different tasks consuming one bag would silently steal each
		// other's chunks. Clones of a single task are the supported
		// sharing mode; cross-task sharing must use ScanInputs.
		if len(cons) > 1 {
			return fmt.Errorf("core: bag %q is consumed by %d tasks (%v); only one consumer is allowed — use ScanInputs to share",
				b, len(cons), cons)
		}
	}
	return a.checkAcyclic()
}

// checkAcyclic verifies the task/bag graph has no cycles via Kahn's
// algorithm over tasks (edges task→task through bags).
func (a *App) checkAcyclic() error {
	// indegree over tasks: an edge exists from producer to consumer of a bag.
	indeg := make(map[string]int, len(a.tasks))
	succ := make(map[string][]string, len(a.tasks))
	for name := range a.tasks {
		indeg[name] = 0
	}
	for bagName, prods := range a.producers {
		for _, p := range prods {
			for _, c := range a.consumers[bagName] {
				succ[p] = append(succ[p], c)
				indeg[c]++
			}
			for _, c := range a.scanners[bagName] {
				succ[p] = append(succ[p], c)
				indeg[c]++
			}
		}
	}
	queue := make([]string, 0, len(indeg))
	for n, d := range indeg {
		if d == 0 {
			queue = append(queue, n)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, m := range succ[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if seen != len(a.tasks) {
		return fmt.Errorf("core: application graph has a cycle")
	}
	return nil
}

// sourceBags returns the names of all source bags.
func (a *App) sourceBags() []string {
	var out []string
	for n, b := range a.bags {
		if b.Source {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
