package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestSpeculativeCloning: with overload detection effectively disabled
// (threshold above 1.0, so no worker ever signals), a long-running task is
// still cloned once the speculative threshold passes. This is the straggler
// case the paper's reactive detector misses: a worker slowed by its machine
// rather than by CPU saturation.
func TestSpeculativeCloning(t *testing.T) {
	cfg := testClusterConfig()
	cfg.Node.OverloadThreshold = 1.5 // unreachable: reactive path off
	cfg.Master.SpeculativeCloning = true
	cfg.Master.SpeculativeAfter = 10 * time.Millisecond
	cfg.Master.CloneInterval = 5 * time.Millisecond
	cfg.Master.DisableHeuristic = true

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const n = 100000
	var processed atomic.Int64
	app := sumApp(&processed)
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSum(t, ctx, cluster.Store()); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	stats := cluster.Master().Stats()
	if stats.Speculative == 0 {
		t.Error("no speculative clone attempts were made")
	}
	if stats.Clones == 0 {
		t.Error("speculative attempts never produced a clone")
	}
	t.Logf("stats: %+v (processed %d)", stats, processed.Load())
}

// TestSpeculativeOffByDefault: without the flag, the same workload and
// unreachable threshold produce zero clones.
func TestSpeculativeOffByDefault(t *testing.T) {
	cfg := testClusterConfig()
	cfg.Node.OverloadThreshold = 1.5
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	const n = 20000
	var processed atomic.Int64
	app := sumApp(&processed)
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	stats := cluster.Master().Stats()
	if stats.Speculative != 0 || stats.Clones != 0 {
		t.Errorf("unexpected cloning without signals: %+v", stats)
	}
}

// TestNoCloneRespected: a NoClone task is never cloned even under
// speculative cloning and forced overload.
func TestNoCloneRespected(t *testing.T) {
	cfg := testClusterConfig()
	cfg.Node.OverloadThreshold = 0.01
	cfg.Node.MonitorInterval = time.Millisecond
	cfg.Master.SpeculativeCloning = true
	cfg.Master.SpeculativeAfter = time.Millisecond
	cfg.Master.CloneInterval = time.Millisecond
	cfg.Master.DisableHeuristic = true

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var processed atomic.Int64
	app := sumApp(&processed)
	app.Task("copy").NoClone = true
	app.Task("sum").NoClone = true
	const n = 50000
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	if got := cluster.Master().Stats().Clones; got != 0 {
		t.Errorf("NoClone tasks were cloned %d times", got)
	}
	want := int64(n) * (n - 1) / 2
	if got := readSum(t, ctx, cluster.Store()); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestMaxClonesRespected: MaxClones caps the worker count.
func TestMaxClonesRespected(t *testing.T) {
	cfg := testClusterConfig()
	cfg.Node.OverloadThreshold = 0.01
	cfg.Node.MonitorInterval = time.Millisecond
	cfg.Master.CloneInterval = time.Millisecond
	cfg.Master.DisableHeuristic = true

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var processed atomic.Int64
	app := sumApp(&processed)
	app.Task("copy").MaxClones = 2 // at most 2 workers total
	const n = 100000
	loadInts(t, ctx, cluster.Store(), "in", n)
	if err := cluster.Run(ctx, app); err != nil {
		t.Fatal(err)
	}
	// Clones counter counts extra workers beyond the original, across all
	// tasks; "sum" may add its own. Verify via running-bag evidence that
	// copy never exceeded 2 workers: worker indices 0 and 1 only.
	stats := cluster.Master().Stats()
	t.Logf("stats: %+v", stats)
	want := int64(n) * (n - 1) / 2
	if got := readSum(t, ctx, cluster.Store()); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}
