// Package bag implements the client side of Hurricane's data bag
// abstraction.
//
// A bag is an unordered collection of fixed-size chunks spread uniformly
// across all storage nodes. Bags expose two main operations — Insert(chunk)
// and Remove() — with the guarantee that every chunk inserted is removed
// exactly once, by exactly one of the (possibly many) concurrent consumers.
// This is the substrate for task cloning: clones of a task share the task's
// input bag, each removing disjoint chunks at its own pace (late binding of
// data to workers, §2.2).
//
// Placement follows the paper's scheme (§3.3): each bag has a pseudorandom
// cyclic permutation of the storage nodes; inserts walk the permutation so
// chunks spread evenly, and removes probe nodes in permutation order.
// Consumers use batch sampling — at most b outstanding requests to b
// different storage nodes — which keeps storage utilization at
// ρ(b,m) = 1 − (1 − 1/m)^{bm} (Eq. 1) and doubles as flow control.
//
// The package also implements the paper's primary-backup replication
// (§4.4): with replication factor r, each logical storage slot is mirrored
// on r physical nodes, the read pointer is synchronized to backups on every
// remove, and clients fail over to a backup when the primary is down.
package bag

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/sketch"
	"repro/internal/transport"
)

// DefaultBatchFactor is the number of outstanding storage requests per
// consumer. The paper picks b = 10, which gives over 99% storage
// utilization even for thousands of storage nodes.
const DefaultBatchFactor = 10

// Config describes the storage cluster as seen by a bag client.
type Config struct {
	// Nodes is the ordered list of storage node names.
	Nodes []string
	// Client is the transport used to reach storage nodes.
	Client transport.Client
	// ChunkSize is the chunk size for writers (default chunk.DefaultSize).
	ChunkSize int
	// BatchFactor is the batch sampling factor b (default 10).
	BatchFactor int
	// Replication is the number of physical replicas per logical slot.
	// 1 (or 0) means no replication; r = n+1 tolerates n storage node
	// failures.
	Replication int
	// PollInterval is the retry delay when probing unsealed bags
	// (default 2ms).
	PollInterval time.Duration
}

func (c *Config) chunkSize() int {
	if c.ChunkSize <= 0 {
		return chunk.DefaultSize
	}
	return c.ChunkSize
}

func (c *Config) batchFactor() int {
	if c.BatchFactor <= 0 {
		return DefaultBatchFactor
	}
	return c.BatchFactor
}

func (c *Config) replication() int {
	if c.Replication <= 1 {
		return 1
	}
	return c.Replication
}

func (c *Config) pollInterval() time.Duration {
	if c.PollInterval <= 0 {
		return 2 * time.Millisecond
	}
	return c.PollInterval
}

// Store is a handle to the storage cluster through which bags are created
// and manipulated. It is safe for concurrent use.
type Store struct {
	cfg Config

	mu    sync.RWMutex
	nodes []string        // physical nodes, index = logical slot
	down  map[string]bool // nodes believed crashed (failover view)

	// removeLocks serialize remove + backup-pointer-sync per slot when
	// replication is on, so a remove served by a failing primary cannot
	// race with a fresh remove against the backup before the pointer
	// sync lands. Keyed by slot index. Removes against different slots
	// (the batch-sampling common case) stay fully parallel.
	removeMu    sync.Mutex
	removeLocks map[int]*sync.Mutex
}

// NewStore returns a Store over the configured cluster.
func NewStore(cfg Config) (*Store, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("bag: no storage nodes configured")
	}
	if cfg.Client == nil {
		return nil, errors.New("bag: no transport client configured")
	}
	if cfg.Replication > len(cfg.Nodes) {
		return nil, fmt.Errorf("bag: replication %d exceeds node count %d",
			cfg.Replication, len(cfg.Nodes))
	}
	return &Store{
		cfg:         cfg,
		nodes:       append([]string(nil), cfg.Nodes...),
		down:        make(map[string]bool),
		removeLocks: make(map[int]*sync.Mutex),
	}, nil
}

// Nodes returns the current physical node list.
func (s *Store) Nodes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.nodes...)
}

// NumSlots returns the number of logical storage slots (= node count).
func (s *Store) NumSlots() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// ChunkSize returns the configured chunk size.
func (s *Store) ChunkSize() int { return s.cfg.chunkSize() }

// BatchFactor returns the configured batch sampling factor.
func (s *Store) BatchFactor() int { return s.cfg.batchFactor() }

// AddNode appends a storage node to the cluster view (§3.4). Bags whose
// handles are created after this call spread data over the enlarged
// cluster.
func (s *Store) AddNode(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes = append(s.nodes, name)
}

// MarkDown records that a physical node has failed, diverting subsequent
// requests to its backups. The application master calls this when it
// detects a storage node failure ("the application master informs each
// compute node to use a backup storage node", §4.4).
func (s *Store) MarkDown(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down[name] = true
}

// MarkUp clears a node's failed status.
func (s *Store) MarkUp(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.down, name)
}

// replicas returns the physical nodes hosting logical slot i, primary
// first.
func (s *Store) replicas(slot int) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.cfg.replication()
	out := make([]string, 0, r)
	m := len(s.nodes)
	for j := 0; j < r; j++ {
		out = append(out, s.nodes[(slot+j)%m])
	}
	return out
}

// primary returns the first live replica of a slot and the backup list.
func (s *Store) primary(slot int) (string, []string, error) {
	reps := s.replicas(slot)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, n := range reps {
		if !s.down[n] {
			rest := make([]string, 0, len(reps)-1)
			rest = append(rest, reps[:i]...)
			rest = append(rest, reps[i+1:]...)
			return n, rest, nil
		}
	}
	return "", nil, fmt.Errorf("bag: all replicas of slot %d are down", slot)
}

// removeLock returns the per-slot remove serialization lock.
func (s *Store) removeLock(slot int) *sync.Mutex {
	s.removeMu.Lock()
	defer s.removeMu.Unlock()
	l, ok := s.removeLocks[slot]
	if !ok {
		l = &sync.Mutex{}
		s.removeLocks[slot] = l
	}
	return l
}

// slotBag returns the per-slot bag key. Each logical slot stores its share
// of a bag under a distinct key so that one physical node can host several
// slots (primary for its own, backup for neighbours).
func slotBag(name string, slot int) string {
	return fmt.Sprintf("%s#%d", name, slot)
}

// callSlot issues req against the slot's primary, failing over to backups
// on node-down errors.
func (s *Store) callSlot(ctx context.Context, slot int, req *transport.Request) (*transport.Response, error) {
	resp, _, err := s.callSlotServed(ctx, slot, req)
	return resp, err
}

// callSlotServed is callSlot but also reports which physical node served
// the request, so remove-pointer synchronization can target the other
// replicas.
func (s *Store) callSlotServed(ctx context.Context, slot int, req *transport.Request) (*transport.Response, string, error) {
	reps := s.replicas(slot)
	var lastErr error
	for _, n := range reps {
		s.mu.RLock()
		isDown := s.down[n]
		s.mu.RUnlock()
		if isDown {
			continue
		}
		resp, err := s.cfg.Client.Call(ctx, n, req)
		if err == nil {
			return resp, n, nil
		}
		if errors.Is(err, transport.ErrNodeDown) {
			s.MarkDown(n)
			lastErr = err
			continue
		}
		return nil, "", err
	}
	if lastErr == nil {
		lastErr = transport.ErrNodeDown
	}
	return nil, "", fmt.Errorf("bag: slot %d unavailable: %w", slot, lastErr)
}

// broadcastSlot issues req to every live replica of a slot, failing if any
// live replica fails.
func (s *Store) broadcastSlot(ctx context.Context, slot int, req *transport.Request) error {
	reps := s.replicas(slot)
	var ok int
	for _, n := range reps {
		s.mu.RLock()
		isDown := s.down[n]
		s.mu.RUnlock()
		if isDown {
			continue
		}
		resp, err := s.cfg.Client.Call(ctx, n, req)
		if err != nil {
			if errors.Is(err, transport.ErrNodeDown) {
				s.MarkDown(n)
				continue
			}
			return err
		}
		if err := resp.Error(); err != nil {
			return err
		}
		ok++
	}
	if ok == 0 {
		return fmt.Errorf("bag: slot %d: %w", slot, transport.ErrNodeDown)
	}
	return nil
}

// permFor returns the bag's pseudorandom cyclic permutation of logical
// slots, deterministically derived from the bag name so that all clients
// agree on it.
func (s *Store) permFor(name string) []int {
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	return rng.Perm(s.NumSlots())
}

// Bag returns a handle to the named bag. Handles are cheap; any number may
// exist for the same bag across any number of workers.
func (s *Store) Bag(name string) *Bag {
	perm := s.permFor(name)
	return &Bag{
		store: s,
		name:  name,
		perm:  perm,
		pos:   rand.Intn(len(perm)), // writers start at random offsets
	}
}

// Seal marks the bag complete on every slot: no further inserts are
// accepted and consumers that drain it observe a definitive end-of-bag.
func (s *Store) Seal(ctx context.Context, name string) error {
	return s.fanout(ctx, name, &transport.Request{Op: transport.OpSeal})
}

// Rewind resets the bag's read pointer on every slot, replaying its
// contents for the next consumer ("reusing the contents of a bag", §4.3,
// and input rewind during failure recovery, §4.4).
func (s *Store) Rewind(ctx context.Context, name string) error {
	return s.fanout(ctx, name, &transport.Request{Op: transport.OpRewind, Arg: 0})
}

// Discard drops the bag's contents on every slot (output invalidation
// during compute-node failure recovery, §4.4).
func (s *Store) Discard(ctx context.Context, name string) error {
	return s.fanout(ctx, name, &transport.Request{Op: transport.OpDiscard})
}

// Delete garbage collects the bag on every slot.
func (s *Store) Delete(ctx context.Context, name string) error {
	return s.fanout(ctx, name, &transport.Request{Op: transport.OpDelete})
}

// DeletePrefix garbage collects every bag whose name starts with prefix
// on every storage node — including slot bags of names derived at
// runtime (partition splits, isolated-key bags, clone partials) that the
// caller cannot enumerate. The multi-job scheduler uses it to discard a
// completed job's namespace in one sweep. Down nodes are skipped: a bag
// they held is unreachable anyway, and replicas (if any) are covered by
// the per-node broadcast.
func (s *Store) DeletePrefix(ctx context.Context, prefix string) error {
	if prefix == "" {
		return fmt.Errorf("bag: refusing to delete the empty prefix")
	}
	req := &transport.Request{Op: transport.OpDeletePrefix, Bag: prefix}
	var ok int
	for _, n := range s.Nodes() {
		s.mu.RLock()
		isDown := s.down[n]
		s.mu.RUnlock()
		if isDown {
			continue
		}
		resp, err := s.cfg.Client.Call(ctx, n, req)
		if err != nil {
			if errors.Is(err, transport.ErrNodeDown) {
				s.MarkDown(n)
				continue
			}
			return err
		}
		if err := resp.Error(); err != nil {
			return err
		}
		ok++
	}
	if ok == 0 {
		return fmt.Errorf("bag: delete prefix %q: %w", prefix, transport.ErrNodeDown)
	}
	return nil
}

// Rename atomically renames a bag on every slot. Both names must hash to
// permutations over the same slot count.
func (s *Store) Rename(ctx context.Context, from, to string) error {
	m := s.NumSlots()
	for slot := 0; slot < m; slot++ {
		req := &transport.Request{
			Op:  transport.OpRename,
			Bag: slotBag(from, slot),
			Dst: slotBag(to, slot),
		}
		if err := s.broadcastSlot(ctx, slot, req); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) fanout(ctx context.Context, name string, tmpl *transport.Request) error {
	m := s.NumSlots()
	for slot := 0; slot < m; slot++ {
		req := *tmpl
		req.Bag = slotBag(name, slot)
		if err := s.broadcastSlot(ctx, slot, &req); err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates bag statistics across all slots.
type Stats struct {
	TotalChunks int64
	ReadChunks  int64
	TotalBytes  int64
	ReadBytes   int64
	Sealed      bool // true only if every slot is sealed
}

// RemainingChunks returns the number of unconsumed chunks.
func (st Stats) RemainingChunks() int64 { return st.TotalChunks - st.ReadChunks }

// RemainingBytes returns the number of unconsumed bytes.
func (st Stats) RemainingBytes() int64 { return st.TotalBytes - st.ReadBytes }

// sketchSlot returns the logical slot hosting a shuffle edge's sketch
// state. Edge statistics are per-edge metadata, not per-slot data, so they
// live on a single deterministic home slot (the first slot of the edge's
// permutation); all producers and the master agree on it by construction.
func (s *Store) sketchSlot(name string) int { return s.permFor(name)[0] }

// PushSketch stores a producer's cumulative shuffle-edge statistics under
// (edge, writerID) on the edge's home slot. Producers push their full
// cumulative stats each time, so a re-push replaces the previous value and
// storage-side merging across producers never double-counts.
func (s *Store) PushSketch(ctx context.Context, edge, writerID string, st *sketch.EdgeStats) error {
	data, err := st.Encode()
	if err != nil {
		return err
	}
	return s.broadcastSlot(ctx, s.sketchSlot(edge), &transport.Request{
		Op: transport.OpSketch, Bag: edge, Dst: writerID, Data: data,
	})
}

// DeleteSketch drops the edge's sketch state on its home slot. The master
// calls it when an edge's producers finish (the stats have served their
// purpose) and when failure recovery discards the edge's data (so stale
// cumulative pushes from an aborted epoch cannot double-count records the
// restarted producers will re-push).
func (s *Store) DeleteSketch(ctx context.Context, edge string) error {
	return s.broadcastSlot(ctx, s.sketchSlot(edge), &transport.Request{
		Op: transport.OpSketch, Bag: edge, Arg: transport.SketchClear,
	})
}

// FetchSketch returns the merge of every producer's pushed statistics for
// the edge (empty stats if nothing was pushed yet).
func (s *Store) FetchSketch(ctx context.Context, edge string) (*sketch.EdgeStats, error) {
	resp, err := s.callSlot(ctx, s.sketchSlot(edge), &transport.Request{
		Op: transport.OpSketch, Bag: edge,
	})
	if err != nil {
		return nil, err
	}
	if err := resp.Error(); err != nil {
		return nil, err
	}
	if len(resp.Data) == 0 {
		return sketch.NewEdgeStats(), nil
	}
	return sketch.DecodeEdgeStats(resp.Data)
}

// Sample aggregates the bag's statistics across every slot. The cloning
// heuristic uses this to estimate how much work remains in a task's input
// (§4.2: "T is estimated by sampling the input bag").
func (s *Store) Sample(ctx context.Context, name string) (Stats, error) {
	var st Stats
	st.Sealed = true
	m := s.NumSlots()
	for slot := 0; slot < m; slot++ {
		resp, err := s.callSlot(ctx, slot, &transport.Request{
			Op:  transport.OpSample,
			Bag: slotBag(name, slot),
		})
		if err != nil {
			return st, err
		}
		if err := resp.Error(); err != nil {
			return st, err
		}
		st.TotalChunks += resp.TotalChunks
		st.ReadChunks += resp.ReadChunks
		st.TotalBytes += resp.TotalBytes
		st.ReadBytes += resp.ReadBytes
		st.Sealed = st.Sealed && resp.Sealed
	}
	return st, nil
}

// SampleSlots samples only k randomly chosen slots and extrapolates,
// matching the paper's "sampling the input bag on a few storage nodes".
func (s *Store) SampleSlots(ctx context.Context, name string, k int) (Stats, error) {
	m := s.NumSlots()
	if k <= 0 || k >= m {
		return s.Sample(ctx, name)
	}
	var st Stats
	st.Sealed = true
	perm := rand.Perm(m)[:k]
	for _, slot := range perm {
		resp, err := s.callSlot(ctx, slot, &transport.Request{
			Op:  transport.OpSample,
			Bag: slotBag(name, slot),
		})
		if err != nil {
			return st, err
		}
		if err := resp.Error(); err != nil {
			return st, err
		}
		st.TotalChunks += resp.TotalChunks
		st.ReadChunks += resp.ReadChunks
		st.TotalBytes += resp.TotalBytes
		st.ReadBytes += resp.ReadBytes
		st.Sealed = st.Sealed && resp.Sealed
	}
	scale := float64(m) / float64(k)
	st.TotalChunks = int64(float64(st.TotalChunks) * scale)
	st.ReadChunks = int64(float64(st.ReadChunks) * scale)
	st.TotalBytes = int64(float64(st.TotalBytes) * scale)
	st.ReadBytes = int64(float64(st.ReadBytes) * scale)
	return st, nil
}
