package bag

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chunk"
	"repro/internal/storage"
	"repro/internal/transport"
)

func newCluster(t *testing.T, m int) (*Store, *transport.InProc, []*storage.Node) {
	t.Helper()
	tr := transport.NewInProc()
	names := make([]string, m)
	nodes := make([]*storage.Node, m)
	for i := 0; i < m; i++ {
		names[i] = fmt.Sprintf("s%d", i)
		nodes[i] = storage.NewNode(names[i])
		tr.Register(names[i], nodes[i])
	}
	st, err := NewStore(Config{
		Nodes:       names,
		Client:      tr,
		ChunkSize:   1 << 10,
		BatchFactor: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, tr, nodes
}

func TestInsertSpreadsAcrossNodes(t *testing.T) {
	st, _, nodes := newCluster(t, 8)
	ctx := context.Background()
	b := st.Bag("spread")
	const n = 160
	for i := 0; i < n; i++ {
		if err := b.Insert(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Cyclic placement: every node holds exactly n/m chunks.
	for i, node := range nodes {
		resp := node.Handle(&transport.Request{Op: transport.OpSample, Bag: slotBag("spread", i)})
		if resp.TotalChunks != n/8 {
			t.Errorf("node %d holds %d chunks, want %d", i, resp.TotalChunks, n/8)
		}
	}
}

func TestRemoveExactlyOnceSingleConsumer(t *testing.T) {
	st, _, _ := newCluster(t, 4)
	ctx := context.Background()
	b := st.Bag("data")
	const n = 200
	for i := 0; i < n; i++ {
		if err := b.Insert(ctx, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(ctx, "data"); err != nil {
		t.Fatal(err)
	}
	r := st.Bag("data")
	defer r.CloseConsumer()
	seen := map[[2]byte]bool{}
	for {
		c, err := r.Remove(ctx)
		if err == ErrEmpty {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		key := [2]byte{c[0], c[1]}
		if seen[key] {
			t.Fatalf("chunk %v delivered twice", key)
		}
		seen[key] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d chunks, want %d", len(seen), n)
	}
}

// TestRemoveExactlyOnceManyClones: the core task-cloning property — any
// number of concurrent consumers (clones) partition the bag exactly.
func TestRemoveExactlyOnceManyClones(t *testing.T) {
	st, tr, _ := newCluster(t, 4)
	// Inject latency so the clones' prefetchers genuinely interleave
	// instead of the first one draining the bag instantly.
	tr.SetLatency(50 * time.Microsecond)
	ctx := context.Background()
	w := st.Bag("data")
	const n = 1000
	for i := 0; i < n; i++ {
		if err := w.Insert(ctx, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(ctx, "data"); err != nil {
		t.Fatal(err)
	}

	const clones = 8
	var mu sync.Mutex
	counts := map[[2]byte]int{}
	perClone := make([]int, clones)
	var wg sync.WaitGroup
	for c := 0; c < clones; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			h := st.Bag("data")
			defer h.CloseConsumer()
			for {
				ch, err := h.Remove(ctx)
				if err == ErrEmpty {
					return
				}
				if err != nil {
					t.Errorf("clone %d: %v", idx, err)
					return
				}
				mu.Lock()
				counts[[2]byte{ch[0], ch[1]}]++
				perClone[idx]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if len(counts) != n {
		t.Fatalf("distinct chunks %d, want %d", len(counts), n)
	}
	for k, c := range counts {
		if c != 1 {
			t.Fatalf("chunk %v delivered %d times", k, c)
		}
	}
	// Late binding: with 8 clones racing, work should actually spread.
	busy := 0
	for _, c := range perClone {
		if c > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d of %d clones processed chunks", busy, clones)
	}
}

func TestPollWorkQueueSemantics(t *testing.T) {
	st, _, _ := newCluster(t, 4)
	ctx := context.Background()
	q := st.Bag("queue")
	// Empty unsealed queue: ErrAgain.
	if _, err := q.Poll(ctx); err != ErrAgain {
		t.Fatalf("empty poll: %v", err)
	}
	if err := q.Insert(ctx, []byte("task1")); err != nil {
		t.Fatal(err)
	}
	c, err := q.Poll(ctx)
	if err != nil || string(c) != "task1" {
		t.Fatalf("poll: %s %v", c, err)
	}
	if _, err := q.Poll(ctx); err != ErrAgain {
		t.Fatalf("drained poll: %v", err)
	}
	if err := st.Seal(ctx, "queue"); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Poll(ctx); err != ErrEmpty {
		t.Fatalf("sealed poll: %v", err)
	}
}

func TestSampleAggregation(t *testing.T) {
	st, _, _ := newCluster(t, 4)
	ctx := context.Background()
	b := st.Bag("data")
	const n = 40
	for i := 0; i < n; i++ {
		if err := b.Insert(ctx, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := st.Sample(ctx, "data")
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalChunks != n || stats.TotalBytes != n*10 {
		t.Fatalf("sample: %+v", stats)
	}
	if stats.Sealed {
		t.Fatal("unsealed bag reported sealed")
	}
	if stats.RemainingChunks() != n || stats.RemainingBytes() != n*10 {
		t.Fatalf("remaining: %+v", stats)
	}
	st.Seal(ctx, "data")
	stats, _ = st.Sample(ctx, "data")
	if !stats.Sealed {
		t.Fatal("sealed bag reported unsealed")
	}
	// Partial-slot sampling extrapolates to roughly the right size.
	est, err := st.SampleSlots(ctx, "data", 2)
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalChunks < n/2 || est.TotalChunks > n*2 {
		t.Fatalf("extrapolated sample too far off: %+v", est)
	}
}

func TestRewindReuse(t *testing.T) {
	st, _, _ := newCluster(t, 4)
	ctx := context.Background()
	b := st.Bag("data")
	for i := 0; i < 20; i++ {
		if err := b.Insert(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Seal(ctx, "data")
	r1 := st.Bag("data")
	n1 := 0
	for {
		if _, err := r1.Remove(ctx); err == ErrEmpty {
			break
		}
		n1++
	}
	r1.CloseConsumer()
	if n1 != 20 {
		t.Fatalf("first pass read %d", n1)
	}
	// Rewind and read the whole bag again (§4.3 "reusing the contents").
	if err := st.Rewind(ctx, "data"); err != nil {
		t.Fatal(err)
	}
	r2 := st.Bag("data")
	defer r2.CloseConsumer()
	n2 := 0
	for {
		if _, err := r2.Remove(ctx); err == ErrEmpty {
			break
		}
		n2++
	}
	if n2 != 20 {
		t.Fatalf("second pass read %d", n2)
	}
}

func TestScannerNonConsuming(t *testing.T) {
	st, _, _ := newCluster(t, 4)
	ctx := context.Background()
	b := st.Bag("data")
	for i := 0; i < 12; i++ {
		if err := b.Insert(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Two scanners see everything independently, before sealing.
	for s := 0; s < 2; s++ {
		sc := st.Scanner("data")
		seen := 0
		for {
			_, err := sc.Next(ctx)
			if err == ErrAgain {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			seen++
		}
		if seen != 12 {
			t.Fatalf("scanner %d saw %d chunks", s, seen)
		}
	}
	// The bag is still fully consumable afterwards.
	st.Seal(ctx, "data")
	r := st.Bag("data")
	defer r.CloseConsumer()
	n := 0
	for {
		if _, err := r.Remove(ctx); err == ErrEmpty {
			break
		}
		n++
	}
	if n != 12 {
		t.Fatalf("consumed %d after scans", n)
	}
	// A scanner over the sealed, fully scanned bag reports ErrEmpty.
	sc := st.Scanner("data")
	drained, err := sc.Drain(ctx, func(chunk.Chunk) error { return nil })
	if err != nil || !drained {
		t.Fatalf("drain: %v %v", drained, err)
	}
}

func TestScannerIncremental(t *testing.T) {
	st, _, _ := newCluster(t, 4)
	ctx := context.Background()
	b := st.Bag("data")
	sc := st.Scanner("data")
	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			if err := b.Insert(ctx, []byte{byte(round), byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		seen := 0
		if _, err := sc.Drain(ctx, func(chunk.Chunk) error { seen++; return nil }); err != nil {
			t.Fatal(err)
		}
		if seen != 5 {
			t.Fatalf("round %d: scanner saw %d new chunks, want 5", round, seen)
		}
	}
	sc.Reset()
	total := 0
	if _, err := sc.Drain(ctx, func(chunk.Chunk) error { total++; return nil }); err != nil {
		t.Fatal(err)
	}
	if total != 15 {
		t.Fatalf("after reset: %d chunks", total)
	}
}

func TestInserterPipelined(t *testing.T) {
	st, _, _ := newCluster(t, 4)
	ctx := context.Background()
	b := st.Bag("data")
	ins := b.Inserter(ctx)
	const n = 300
	for i := 0; i < n; i++ {
		if err := ins.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ins.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := st.Sample(ctx, "data")
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalChunks != n {
		t.Fatalf("inserted %d chunks, want %d", stats.TotalChunks, n)
	}
}

func TestRenameAdoptsData(t *testing.T) {
	st, _, _ := newCluster(t, 4)
	ctx := context.Background()
	b := st.Bag("partial")
	for i := 0; i < 10; i++ {
		if err := b.Insert(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Rename(ctx, "partial", "final"); err != nil {
		t.Fatal(err)
	}
	st.Seal(ctx, "final")
	r := st.Bag("final")
	defer r.CloseConsumer()
	n := 0
	for {
		if _, err := r.Remove(ctx); err == ErrEmpty {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("renamed bag has %d chunks", n)
	}
	// Old name is gone.
	stats, _ := st.Sample(ctx, "partial")
	if stats.TotalChunks != 0 {
		t.Fatalf("old name still has data: %+v", stats)
	}
}

func TestDiscardAndDelete(t *testing.T) {
	st, _, _ := newCluster(t, 4)
	ctx := context.Background()
	b := st.Bag("data")
	for i := 0; i < 10; i++ {
		b.Insert(ctx, []byte{byte(i)})
	}
	if err := st.Discard(ctx, "data"); err != nil {
		t.Fatal(err)
	}
	stats, _ := st.Sample(ctx, "data")
	if stats.TotalChunks != 0 {
		t.Fatalf("after discard: %+v", stats)
	}
	if err := st.Delete(ctx, "data"); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewStore(Config{}); err == nil {
		t.Fatal("empty config must fail")
	}
	if _, err := NewStore(Config{Nodes: []string{"a"}}); err == nil {
		t.Fatal("missing client must fail")
	}
	tr := transport.NewInProc()
	if _, err := NewStore(Config{Nodes: []string{"a"}, Client: tr, Replication: 3}); err == nil {
		t.Fatal("replication > nodes must fail")
	}
}

func TestAddNodeGrowsPlacement(t *testing.T) {
	st, tr, _ := newCluster(t, 2)
	ctx := context.Background()
	n3 := storage.NewNode("s2")
	tr.Register("s2", n3)
	st.AddNode("s2")
	if st.NumSlots() != 3 {
		t.Fatalf("slots = %d", st.NumSlots())
	}
	b := st.Bag("grown")
	for i := 0; i < 30; i++ {
		if err := b.Insert(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	resp := n3.Handle(&transport.Request{Op: transport.OpSample, Bag: slotBag("grown", 2)})
	if resp.TotalChunks == 0 {
		t.Fatal("new node received no chunks")
	}
}

// TestPermDeterministicQuick: every client derives the same permutation
// for a bag name, so placement needs no coordination.
func TestPermDeterministicQuick(t *testing.T) {
	st, _, _ := newCluster(t, 8)
	f := func(name string) bool {
		p1 := st.permFor(name)
		p2 := st.permFor(name)
		if len(p1) != 8 || len(p2) != 8 {
			return false
		}
		seen := map[int]bool{}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
			seen[p1[i]] = true
		}
		return len(seen) == 8 // a true permutation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchFactorBoundsConcurrency(t *testing.T) {
	// With latency injected, a consumer with batch factor b should issue
	// roughly b concurrent requests; total call count stays sane.
	st, tr, _ := newCluster(t, 4)
	ctx := context.Background()
	b := st.Bag("data")
	const n = 40
	for i := 0; i < n; i++ {
		b.Insert(ctx, []byte{byte(i)})
	}
	st.Seal(ctx, "data")
	tr.SetLatency(100 * time.Microsecond)
	r := st.Bag("data")
	defer r.CloseConsumer()
	got := 0
	for {
		if _, err := r.Remove(ctx); err == ErrEmpty {
			break
		}
		got++
	}
	if got != n {
		t.Fatalf("got %d chunks", got)
	}
}
