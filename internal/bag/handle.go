package bag

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/transport"
)

// ErrEmpty is returned by Remove when the bag is sealed and every chunk has
// been consumed: the definitive end-of-bag signal that lets a worker
// terminate ("the remove operation fails when a bag is empty, allowing a
// worker to terminate", §2.2).
var ErrEmpty = transport.ErrEmpty

// ErrAgain is returned by Poll when no chunk is currently available but the
// bag has not been sealed.
var ErrAgain = transport.ErrAgain

// Bag is a client handle to a named bag. A handle may be used by one
// goroutine at a time; create one handle per worker (handles are cheap and
// all handles to the same name address the same data).
type Bag struct {
	store *Store
	name  string
	perm  []int
	pos   int // next insert position within perm

	cons     *consumer // lazily started remove pipeline
	quiesced bool      // wind down instead of fetching more (Quiesce)
}

// Name returns the bag's name.
func (b *Bag) Name() string { return b.name }

// Store returns the owning store.
func (b *Bag) Store() *Store { return b.store }

// refresh re-derives the slot permutation if storage nodes were added
// since the handle was created (§3.4), so writers start placing chunks on
// the new nodes.
func (b *Bag) refresh() {
	if m := b.store.NumSlots(); m != len(b.perm) {
		b.perm = b.store.permFor(b.name)
	}
}

// nextSlot returns the next logical slot in pseudorandom cyclic order.
func (b *Bag) nextSlot() int {
	b.refresh()
	slot := b.perm[b.pos%len(b.perm)]
	b.pos++
	return slot
}

// Insert writes one chunk to the next storage node in the bag's
// pseudorandom cyclic order. With replication enabled the chunk is written
// to every replica of the slot before Insert returns.
func (b *Bag) Insert(ctx context.Context, c chunk.Chunk) error {
	slot := b.nextSlot()
	req := &transport.Request{Op: transport.OpInsert, Bag: slotBag(b.name, slot), Data: c}
	return b.store.broadcastSlot(ctx, slot, req)
}

// Remove returns the next chunk, or ErrEmpty once the bag is sealed and
// drained. The first call starts a batch-sampling prefetch pipeline with b
// outstanding requests to distinct storage nodes; subsequent calls are
// served from the pipeline. The exactly-once guarantee holds across any
// number of concurrent consumers (clones), because the per-slot read
// pointer on the storage node is the single point of truth.
func (b *Bag) Remove(ctx context.Context) (chunk.Chunk, error) {
	if b.cons == nil {
		if b.quiesced {
			return nil, ErrEmpty
		}
		b.cons = newConsumer(b)
	}
	return b.cons.next(ctx)
}

// Quiesce winds the consumer down without losing data: the prefetch
// pipeline stops issuing new removes against storage, chunks it already
// consumed keep flowing out of Remove, and once they are drained Remove
// reports ErrEmpty — exactly the end-of-bag protocol, just early. This
// is the data-safe half of cooperative preemption: a yielded worker must
// still process every chunk the pipeline took from the bag, because a
// consumed chunk dropped on the floor is lost forever. Must be called
// from the goroutine that calls Remove.
func (b *Bag) Quiesce() {
	b.quiesced = true
	if b.cons != nil {
		b.cons.quiesce()
	}
}

// CloseConsumer stops the prefetch pipeline, if one is running. Chunks
// already prefetched but not yet returned by Remove are lost to this
// handle (they have been consumed from the bag); callers should drain to
// ErrEmpty in normal operation and rely on task restart for recovery.
func (b *Bag) CloseConsumer() {
	if b.cons != nil {
		b.cons.stop()
		b.cons = nil
	}
}

// Poll makes a single sweep over the storage nodes looking for one chunk.
// It returns ErrAgain if every node is currently empty but the bag is
// unsealed, and ErrEmpty if the bag is sealed and drained. Poll is the
// consumption primitive for work bags, which are never sealed while the
// application runs.
func (b *Bag) Poll(ctx context.Context) (chunk.Chunk, error) {
	b.refresh()
	m := len(b.perm)
	start := rand.Intn(m)
	empty := 0
	for i := 0; i < m; i++ {
		slot := b.perm[(start+i)%m]
		resp, served, err := b.removeFromSlot(ctx, slot)
		if err != nil {
			return nil, err
		}
		_ = served
		switch resp.Status {
		case transport.StatusOK:
			return resp.Data, nil
		case transport.StatusEmpty:
			empty++
		case transport.StatusAgain:
			// keep sweeping
		default:
			return nil, resp.Error()
		}
	}
	if empty == m {
		return nil, ErrEmpty
	}
	return nil, ErrAgain
}

// removeFromSlot performs one remove against a slot, synchronizing the
// read pointer to the slot's other replicas before returning the chunk.
// With replication on, the remove+sync pair is serialized per slot so
// failover cannot interleave a fresh remove between a primary-served
// remove and its pointer sync (which would re-deliver chunks).
func (b *Bag) removeFromSlot(ctx context.Context, slot int) (*transport.Response, string, error) {
	replicated := b.store.cfg.replication() > 1
	if replicated {
		l := b.store.removeLock(slot)
		l.Lock()
		defer l.Unlock()
	}
	resp, served, err := b.store.callSlotServed(ctx, slot, &transport.Request{
		Op:  transport.OpRemove,
		Bag: slotBag(b.name, slot),
	})
	if err != nil {
		return nil, "", err
	}
	if replicated && resp.Status == transport.StatusOK {
		if err := b.syncPointer(ctx, slot, resp.ReadChunks, served); err != nil {
			return nil, "", err
		}
	}
	return resp, served, nil
}

// syncPointer propagates the read pointer to every other live replica of
// the slot so a failover target resumes from the right position (§4.4:
// bag state such as the file pointer is replicated). The advance is
// monotonic, so concurrent syncs from the batch-sampling fetchers commute,
// and it completes before the chunk is delivered to the application,
// which is what makes delivery exactly-once across a primary failure.
func (b *Bag) syncPointer(ctx context.Context, slot int, pos int64, servedBy string) error {
	for _, n := range b.store.replicas(slot) {
		if n == servedBy {
			continue
		}
		b.store.mu.RLock()
		isDown := b.store.down[n]
		b.store.mu.RUnlock()
		if isDown {
			continue
		}
		resp, err := b.store.cfg.Client.Call(ctx, n, &transport.Request{
			Op:  transport.OpAdvance,
			Bag: slotBag(b.name, slot),
			Arg: pos,
		})
		if err != nil {
			if errors.Is(err, transport.ErrNodeDown) {
				b.store.MarkDown(n)
				continue
			}
			return err
		}
		if err := resp.Error(); err != nil {
			return err
		}
	}
	return nil
}

// Writer returns a chunk.Writer that frames records into chunks of the
// store's configured size and inserts each completed chunk into the bag.
// Callers must Flush it before sealing the bag.
func (b *Bag) Writer(ctx context.Context) *chunk.Writer {
	return chunk.NewWriter(b.store.ChunkSize(), func(c chunk.Chunk) error {
		return b.Insert(ctx, c)
	})
}

// ---- batch-sampling consumer ----

type fetchResult struct {
	c   chunk.Chunk
	err error
}

// consumer implements the remove-side batch sampling pipeline: b worker
// goroutines each keep one request outstanding against a distinct storage
// node, and completed chunks flow into a buffered channel that Remove
// drains. When a slot reports a sealed empty bag it is retired; when all
// slots are retired the stream ends.
type consumer struct {
	b      *Bag
	ctx    context.Context
	cancel context.CancelFunc
	ch     chan fetchResult
	wg     sync.WaitGroup

	mu        sync.Mutex
	done      []bool // per-slot: sealed and drained
	pending   int    // live slots
	cursor    int    // next index into perm to hand out
	quiescing bool   // fetchers exit instead of removing more chunks
}

func newConsumer(b *Bag) *consumer {
	ctx, cancel := context.WithCancel(context.Background())
	m := len(b.perm)
	f := b.store.BatchFactor()
	if f > m {
		f = m
	}
	c := &consumer{
		b:       b,
		ctx:     ctx,
		cancel:  cancel,
		ch:      make(chan fetchResult, f),
		done:    make([]bool, m),
		pending: m,
	}
	for i := 0; i < f; i++ {
		c.wg.Add(1)
		go c.fetchLoop()
	}
	// End-of-bag is signalled by closing the channel only after every
	// fetcher has exited, so a chunk held by a slow fetcher can never be
	// overtaken by the end-of-bag signal (which would silently drop it —
	// the chunk is already consumed from storage).
	go func() {
		c.wg.Wait()
		close(c.ch)
	}()
	return c
}

// nextSlotLocked returns the next live slot in cyclic permutation order,
// or -1 when all slots are retired.
func (c *consumer) nextSlot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending == 0 {
		return -1
	}
	m := len(c.b.perm)
	for i := 0; i < m; i++ {
		slot := c.b.perm[c.cursor%m]
		c.cursor++
		if !c.done[slot] {
			return slot
		}
	}
	return -1
}

func (c *consumer) retire(slot int) (remaining int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.done[slot] {
		c.done[slot] = true
		c.pending--
	}
	return c.pending
}

// quiesce makes every fetcher exit before its next remove. Chunks
// already fetched (buffered in the channel or held by an in-flight
// request) still reach Remove; the channel then closes, ending the bag
// early for this handle only.
func (c *consumer) quiesce() {
	c.mu.Lock()
	c.quiescing = true
	c.mu.Unlock()
}

func (c *consumer) fetchLoop() {
	defer c.wg.Done()
	interval := c.b.store.cfg.pollInterval()
	for {
		c.mu.Lock()
		stop := c.quiescing
		c.mu.Unlock()
		if stop {
			return
		}
		slot := c.nextSlot()
		if slot < 0 {
			// All slots drained. The channel close (after all fetchers
			// exit) is the end-of-bag signal.
			return
		}
		resp, _, err := c.b.removeFromSlot(c.ctx, slot)
		if err != nil {
			if c.ctx.Err() != nil {
				return
			}
			select {
			case c.ch <- fetchResult{err: err}:
			case <-c.ctx.Done():
			}
			return
		}
		switch resp.Status {
		case transport.StatusOK:
			select {
			case c.ch <- fetchResult{c: resp.Data}:
			case <-c.ctx.Done():
				return
			}
		case transport.StatusEmpty:
			c.retire(slot)
		case transport.StatusAgain:
			// Unsealed and momentarily empty: back off briefly. This
			// only happens for streaming-style consumption; batch tasks
			// read sealed bags.
			timer := time.NewTimer(interval)
			select {
			case <-timer.C:
			case <-c.ctx.Done():
				timer.Stop()
				return
			}
		default:
			select {
			case c.ch <- fetchResult{err: resp.Error()}:
			case <-c.ctx.Done():
			}
			return
		}
	}
}

func (c *consumer) next(ctx context.Context) (chunk.Chunk, error) {
	select {
	case r, ok := <-c.ch:
		if !ok {
			return nil, ErrEmpty
		}
		return r.c, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.ctx.Done():
		return nil, c.ctx.Err()
	}
}

func (c *consumer) stop() {
	c.cancel()
	c.wg.Wait()
}

// ---- pipelined inserter ----

// Inserter provides a pipelined insert path with at most b outstanding
// insert requests, mirroring batch sampling on the write side. Errors are
// reported on the next Insert or on Close.
type Inserter struct {
	b    *Bag
	ctx  context.Context
	sem  chan struct{}
	wg   sync.WaitGroup
	mu   sync.Mutex
	errv error
}

// Inserter returns a pipelined inserter for the bag.
func (b *Bag) Inserter(ctx context.Context) *Inserter {
	f := b.store.BatchFactor()
	return &Inserter{b: b, ctx: ctx, sem: make(chan struct{}, f)}
}

func (i *Inserter) setErr(err error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.errv == nil {
		i.errv = err
	}
}

// Err returns the first asynchronous insert error, if any.
func (i *Inserter) Err() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.errv
}

// Insert enqueues one chunk, blocking while b inserts are outstanding.
func (i *Inserter) Insert(c chunk.Chunk) error {
	if err := i.Err(); err != nil {
		return err
	}
	// Slot selection must happen synchronously to preserve the cyclic
	// order; only the RPC itself is asynchronous.
	slot := i.b.nextSlot()
	select {
	case i.sem <- struct{}{}:
	case <-i.ctx.Done():
		return i.ctx.Err()
	}
	i.wg.Add(1)
	go func() {
		defer func() {
			<-i.sem
			i.wg.Done()
		}()
		req := &transport.Request{Op: transport.OpInsert, Bag: slotBag(i.b.name, slot), Data: c}
		if err := i.b.store.broadcastSlot(i.ctx, slot, req); err != nil {
			i.setErr(err)
		}
	}()
	return nil
}

// Close waits for all outstanding inserts and returns the first error.
func (i *Inserter) Close() error {
	i.wg.Wait()
	return i.Err()
}
