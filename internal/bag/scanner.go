package bag

import (
	"context"

	"repro/internal/chunk"
	"repro/internal/transport"
)

// Scanner reads a bag's chunks without consuming them, maintaining its own
// per-slot cursor. The application master uses scanners to monitor the
// done work bag incrementally and to replay it in full after a master
// crash (§4.4: "replaying the done work bag involves rereading the entire
// bag"). Multiple scanners over one bag are independent, which is also how
// several workers can read an entire bag concurrently (§4.3).
type Scanner struct {
	store  *Store
	name   string
	cursor []int64 // per-slot next chunk index
	slot   int     // round-robin position
}

// Scanner returns a new scanner positioned at the start of the bag.
func (s *Store) Scanner(name string) *Scanner {
	return &Scanner{
		store:  s,
		name:   name,
		cursor: make([]int64, s.NumSlots()),
	}
}

// Next returns the next unscanned chunk. It returns ErrAgain when it has
// caught up with the bag's current contents (more may be inserted later)
// and ErrEmpty when the bag is sealed everywhere and fully scanned.
func (sc *Scanner) Next(ctx context.Context) (chunk.Chunk, error) {
	if m := sc.store.NumSlots(); m > len(sc.cursor) {
		grown := make([]int64, m)
		copy(grown, sc.cursor)
		sc.cursor = grown
	}
	m := len(sc.cursor)
	sealedAndDone := 0
	for i := 0; i < m; i++ {
		slot := (sc.slot + i) % m
		resp, err := sc.store.callSlot(ctx, slot, &transport.Request{
			Op:  transport.OpReadAt,
			Bag: slotBag(sc.name, slot),
			Arg: sc.cursor[slot],
		})
		if err != nil {
			return nil, err
		}
		switch resp.Status {
		case transport.StatusOK:
			sc.cursor[slot]++
			sc.slot = slot // stay on a productive slot
			return resp.Data, nil
		case transport.StatusEmpty:
			sealedAndDone++
		case transport.StatusAgain:
			// caught up on this slot
		default:
			return nil, resp.Error()
		}
	}
	if sealedAndDone == m {
		return nil, ErrEmpty
	}
	return nil, ErrAgain
}

// Reset rewinds the scanner to the beginning of the bag.
func (sc *Scanner) Reset() {
	for i := range sc.cursor {
		sc.cursor[i] = 0
	}
	sc.slot = 0
}

// Drain scans every currently available chunk, invoking fn for each, and
// returns when it has caught up (ErrAgain) or exhausted a sealed bag
// (ErrEmpty); both are reported as (caughtUp, nil). Other errors abort.
func (sc *Scanner) Drain(ctx context.Context, fn func(chunk.Chunk) error) (sealed bool, err error) {
	for {
		c, err := sc.Next(ctx)
		if err == ErrAgain {
			return false, nil
		}
		if err == ErrEmpty {
			return true, nil
		}
		if err != nil {
			return false, err
		}
		if err := fn(c); err != nil {
			return false, err
		}
	}
}
