package bag

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/transport"
)

// newReplicatedCluster builds an in-proc store over m storage nodes with
// the given replication factor.
func newReplicatedCluster(t *testing.T, m, repl int) (*Store, *transport.InProc) {
	t.Helper()
	tr := transport.NewInProc()
	names := make([]string, m)
	for i := 0; i < m; i++ {
		names[i] = fmt.Sprintf("s%d", i)
		tr.Register(names[i], storage.NewNode(names[i]))
	}
	st, err := NewStore(Config{
		Nodes:       names,
		Client:      tr,
		ChunkSize:   1 << 10,
		BatchFactor: 4,
		Replication: repl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, tr
}

func chunkWithID(id uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return b[:]
}

func idOfChunk(c []byte) uint64 { return binary.BigEndian.Uint64(c) }

// TestFailoverExactlyOnce inserts chunks with replication 2, consumes half,
// crashes one storage node mid-consumption, and verifies every chunk is
// delivered exactly once.
func TestFailoverExactlyOnce(t *testing.T) {
	for round := 0; round < 20; round++ {
		ctx := context.Background()
		st, tr := newReplicatedCluster(t, 4, 2)
		const n = 400
		w := st.Bag("data")
		for i := 0; i < n; i++ {
			if err := w.Insert(ctx, chunkWithID(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Seal(ctx, "data"); err != nil {
			t.Fatal(err)
		}

		seen := make(map[uint64]int)
		var mu sync.Mutex
		record := func(c []byte) {
			mu.Lock()
			seen[idOfChunk(c)]++
			mu.Unlock()
		}

		r := st.Bag("data")
		got := 0
		for got < n/2 {
			c, err := r.Remove(ctx)
			if err != nil {
				t.Fatalf("round %d: remove %d: %v", round, got, err)
			}
			record(c)
			got++
		}
		tr.Crash("s1")
		st.MarkDown("s1")
		for {
			c, err := r.Remove(ctx)
			if err == ErrEmpty {
				break
			}
			if err != nil {
				t.Fatalf("round %d: post-crash remove: %v", round, err)
			}
			record(c)
			got++
		}
		r.CloseConsumer()
		for i := uint64(0); i < n; i++ {
			switch seen[i] {
			case 1:
			case 0:
				t.Fatalf("round %d: chunk %d lost (delivered %d total)", round, i, got)
			default:
				t.Fatalf("round %d: chunk %d delivered %d times", round, i, seen[i])
			}
		}
	}
}

// TestFailoverConcurrentConsumers runs two consumer handles (clones) while
// a node crashes; together they must see each chunk exactly once.
func TestFailoverConcurrentConsumers(t *testing.T) {
	for round := 0; round < 20; round++ {
		ctx := context.Background()
		st, tr := newReplicatedCluster(t, 4, 2)
		const n = 400
		w := st.Bag("data")
		for i := 0; i < n; i++ {
			if err := w.Insert(ctx, chunkWithID(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Seal(ctx, "data"); err != nil {
			t.Fatal(err)
		}

		seen := make(map[uint64]int)
		var mu sync.Mutex
		var wg sync.WaitGroup
		crash := make(chan struct{})
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				h := st.Bag("data")
				defer h.CloseConsumer()
				count := 0
				for {
					c, err := h.Remove(ctx)
					if err == ErrEmpty {
						return
					}
					if err != nil {
						t.Errorf("round %d consumer %d: %v", round, idx, err)
						return
					}
					mu.Lock()
					seen[idOfChunk(c)]++
					mu.Unlock()
					count++
					if idx == 0 && count == 50 {
						close(crash)
					}
				}
			}(c)
		}
		go func() {
			<-crash
			tr.Crash("s2")
			st.MarkDown("s2")
		}()
		wg.Wait()
		var lost, dup int
		for i := uint64(0); i < n; i++ {
			if seen[i] == 0 {
				lost++
			} else if seen[i] > 1 {
				dup++
			}
		}
		if lost > 0 || dup > 0 {
			t.Fatalf("round %d: %d lost, %d duplicated of %d", round, lost, dup, n)
		}
	}
}
