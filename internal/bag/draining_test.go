package bag

import (
	"context"
	"errors"
	"testing"

	"repro/internal/transport"
)

// TestDrainingNodeRejectsInserts: a storage node being removed (§3.4)
// rejects inserts with a distinguishable error while removes keep working,
// letting its bags drain.
func TestDrainingNodeRejectsInserts(t *testing.T) {
	st, _, nodes := newCluster(t, 4)
	ctx := context.Background()
	b := st.Bag("data")
	for i := 0; i < 40; i++ {
		if err := b.Insert(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Drain node 2. Inserts that land on its slot now fail loudly.
	nodes[2].SetDraining(true)
	var sawDraining bool
	for i := 0; i < 8; i++ {
		if err := b.Insert(ctx, []byte{0xFF}); err != nil {
			if !errors.Is(err, transport.ErrDraining) {
				t.Fatalf("unexpected insert error: %v", err)
			}
			sawDraining = true
		}
	}
	if !sawDraining {
		t.Fatal("no insert hit the draining node's slot")
	}
	// Removes still work everywhere: the bag drains completely.
	st.Seal(ctx, "data")
	r := st.Bag("data")
	defer r.CloseConsumer()
	n := 0
	for {
		if _, err := r.Remove(ctx); err == ErrEmpty {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n < 40 {
		t.Fatalf("drained only %d of at least 40 chunks", n)
	}
}

// TestBagWriterHelper: the Bag.Writer convenience frames records and
// inserts completed chunks.
func TestBagWriterHelper(t *testing.T) {
	st, _, _ := newCluster(t, 4)
	ctx := context.Background()
	b := st.Bag("framed")
	w := b.Writer(ctx)
	for i := 0; i < 100; i++ {
		if err := w.Append([]byte{byte(i), byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	stats, err := st.Sample(ctx, "framed")
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalBytes == 0 || stats.TotalChunks == 0 {
		t.Fatalf("writer inserted nothing: %+v", stats)
	}
}

// TestMarkUpRestoresPrimary: after MarkDown diverts to a backup, MarkUp
// restores the original routing.
func TestMarkUpRestoresPrimary(t *testing.T) {
	st, _ := newReplicatedCluster(t, 4, 2)
	primary, backups, err := st.primary(0)
	if err != nil {
		t.Fatal(err)
	}
	if primary != "s0" || len(backups) != 1 {
		t.Fatalf("replicas wrong: %s %v", primary, backups)
	}
	st.MarkDown("s0")
	p2, _, err := st.primary(0)
	if err != nil || p2 != "s1" {
		t.Fatalf("failover primary %s, %v", p2, err)
	}
	st.MarkUp("s0")
	p3, _, _ := st.primary(0)
	if p3 != "s0" {
		t.Fatalf("primary not restored: %s", p3)
	}
	// All replicas down: error.
	st.MarkDown("s0")
	st.MarkDown("s1")
	if _, _, err := st.primary(0); err == nil {
		t.Fatal("expected all-replicas-down error")
	}
}
